"""The PCP-like metric catalog: 952 host + 88 container metrics.

Each :class:`MetricSpec` couples a named metric to the simulation
state through a linear *driver*::

    value(t) = base + gain * f(state[channel, t]) + noise(t)

where ``state`` is the per-tick host or container state vector defined
below, ``f`` is an optional transform (identity or ``100 - x`` for
idle-style metrics), and ``noise`` is white Gaussian measurement
noise.  Counter-semantics metrics are emitted as cumulative sums and
converted back to rates by the preprocessing step, exercising the
paper's section-3.1 pipeline.

The catalog contains every metric the paper's Table 4 names
(``network.tcp.currestab``, ``kernel.all.pswitch``,
``mem.vmstat.nr_inactive_anon``, ``cgroup.cpusched.throttled``,
``vfs.inodes.free``, ``disk.all.aveq``, ``hinv.ninterface``, the
``C-CPU``/``C-MEM``/``S-MEM-U-*`` derived utilizations, ...) plus
realistic filler families (per-CPU splits, slab caches, protocol
counters) to reach exactly the paper's 952/88 split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.features.meta import Domain, FeatureMeta, Scope, infer_domain

__all__ = [
    "MetricSpec",
    "SpecArrays",
    "MetricCatalog",
    "default_catalog",
    "HOST_CHANNELS",
    "CONTAINER_CHANNELS",
    "N_HOST_METRICS",
    "N_CONTAINER_METRICS",
]

N_HOST_METRICS = 952
N_CONTAINER_METRICS = 88

# ----------------------------------------------------------------------
# State-vector channel layout
# ----------------------------------------------------------------------
HOST_CHANNELS: dict[str, int] = {
    "cpu_util": 0,  # % of node cores busy
    "mem_util": 1,  # % of node memory used
    "disk_util": 2,  # % of sequential disk bandwidth used
    "net_util": 3,  # % of NIC bandwidth used
    "pswitch": 4,  # context switches / s
    "tcp_established": 5,  # established TCP connections
    "nprocs": 6,  # processes
    "page_in": 7,  # page-in KB/s
    "disk_aveq": 8,  # average disk queue length
    "interrupts": 9,  # interrupts / s
    "load_avg": 10,  # 1-minute load average
    "mem_used_log": 11,  # log1p(bytes of memory used)
    "io_wait": 12,  # % of CPU time in iowait
    "net_packets": 13,  # packets / s
    "membw_util": 14,  # % of DRAM bandwidth used
    "one": 15,  # always 0: constant metrics are pure base + noise
    "cpu_steal": 16,  # % of node cores lost to co-located tenants
}
N_HOST_CHANNELS = len(HOST_CHANNELS)

CONTAINER_CHANNELS: dict[str, int] = {
    "cpu_rel_util": 0,  # % of the container's allocation used (C-CPU)
    "cpu_host_util": 1,  # % of node cores used by this container
    "throttled": 2,  # CFS throttled periods this second (0-10)
    "periods": 3,  # CFS periods this second (10)
    "mem_limit_util": 4,  # % of memory limit used (C-MEM)
    "mem_usage_log": 5,  # log1p(bytes resident)
    "rx_log": 6,  # log1p(bytes received / s)
    "tx_log": 7,  # log1p(bytes sent / s)
    "connections": 8,  # open TCP connections
    "processes": 9,  # processes in the container
    "page_in_log": 10,  # log1p(page-in bytes / s)
    "disk_read_log": 11,  # log1p(disk read bytes / s)
    "disk_write_log": 12,  # log1p(disk write bytes / s)
    "one": 13,  # always 0: constant metrics are pure base + noise
}
N_CONTAINER_CHANNELS = len(CONTAINER_CHANNELS)


@dataclass(frozen=True)
class MetricSpec:
    """One metric's identity, semantics and state driver."""

    name: str
    scope: Scope
    channel: int
    gain: float = 1.0
    base: float = 0.0
    noise: float = 0.0
    transform: str = "identity"  # or "complement100"
    counter: bool = False  # emitted cumulatively, converted to a rate
    utilization: bool = False  # relative 0-100 scale (binary-level source)
    bytes_like: bool = False  # log-scale candidate
    domain: Domain | None = None  # inferred from the name when None
    #: Gauge whose physical domain is [0, inf): emitted values are
    #: clamped at 0 after noise (counters get this implicitly via their
    #: increment clamp; gauges must opt in).
    nonnegative: bool = False

    def feature_meta(self) -> FeatureMeta:
        """The pipeline-facing description of this metric."""
        domain = self.domain if self.domain is not None else infer_domain(self.name)
        return FeatureMeta(
            name=self.name,
            domain=domain,
            scope=self.scope,
            utilization=self.utilization,
            bytes_like=self.bytes_like,
        )


@dataclass(frozen=True)
class SpecArrays:
    """Vectorized view of a spec list, shared by batch and streaming
    synthesis so both paths run the exact same arithmetic."""

    channels: np.ndarray
    gains: np.ndarray
    bases: np.ndarray
    noises: np.ndarray
    complement: np.ndarray  # bool: transform == "complement100"
    noisy: np.ndarray  # bool: noise > 0
    counters: np.ndarray  # bool: cumulative counter semantics
    # Precomputed index/sigma views of the boolean masks, shared by the
    # batched row kernels so steady-state ticks do no mask arithmetic.
    complement_idx: np.ndarray
    noisy_idx: np.ndarray
    counter_idx: np.ndarray
    sigma: np.ndarray  # noises[noisy]
    nonneg: np.ndarray  # bool: gauge clamped at 0 after noise
    nonneg_idx: np.ndarray

    @staticmethod
    def from_specs(specs: list[MetricSpec]) -> "SpecArrays":
        noises = np.array([s.noise for s in specs])
        complement = np.array([s.transform == "complement100" for s in specs])
        noisy = noises > 0
        counters = np.array([s.counter for s in specs])
        nonneg = np.array([s.nonnegative for s in specs])
        return SpecArrays(
            channels=np.array([s.channel for s in specs]),
            gains=np.array([s.gain for s in specs]),
            bases=np.array([s.base for s in specs]),
            noises=noises,
            complement=complement,
            noisy=noisy,
            counters=counters,
            complement_idx=np.flatnonzero(complement),
            noisy_idx=np.flatnonzero(noisy),
            counter_idx=np.flatnonzero(counters),
            sigma=noises[noisy],
            nonneg=nonneg,
            nonneg_idx=np.flatnonzero(nonneg),
        )


class MetricCatalog:
    """An ordered collection of host and container metric specs."""

    def __init__(self, host: list[MetricSpec], container: list[MetricSpec]):
        for spec in host:
            if spec.scope != Scope.HOST:
                raise ValueError(f"{spec.name} is not host-scoped.")
        for spec in container:
            if spec.scope != Scope.CONTAINER:
                raise ValueError(f"{spec.name} is not container-scoped.")
        names = [s.name for s in host] + [s.name for s in container]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise ValueError(f"Duplicate metric names: {sorted(duplicates)[:5]}.")
        self.host = list(host)
        self.container = list(container)
        self._host_arrays = SpecArrays.from_specs(self.host)
        self._container_arrays = SpecArrays.from_specs(self.container)

    def spec_arrays(self, specs: list[MetricSpec]) -> SpecArrays:
        """Precomputed driver arrays for ``specs`` (cached for the
        catalog's own host / container lists)."""
        if specs is self.host:
            return self._host_arrays
        if specs is self.container:
            return self._container_arrays
        return SpecArrays.from_specs(specs)

    @property
    def n_host(self) -> int:
        return len(self.host)

    @property
    def n_container(self) -> int:
        return len(self.container)

    @property
    def n_metrics(self) -> int:
        return self.n_host + self.n_container

    def feature_meta(self) -> list[FeatureMeta]:
        """Per-column metadata for instance matrices (host then container)."""
        return [spec.feature_meta() for spec in self.host + self.container]

    def names(self) -> list[str]:
        return [spec.name for spec in self.host + self.container]

    def synthesize(
        self,
        specs: list[MetricSpec],
        state: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vectorized metric synthesis from a state matrix.

        ``state`` has shape ``(T, n_channels)``; returns ``(T, len(specs))``.
        """
        T = state.shape[0]
        arrays = self.spec_arrays(specs)
        values = state[:, arrays.channels] * arrays.gains + arrays.bases
        complement = arrays.complement
        if complement.any():
            raw = state[:, arrays.channels[complement]] * arrays.gains[complement]
            values[:, complement] = (
                100.0 - raw + arrays.bases[complement]
            )
        noisy = arrays.noisy
        if noisy.any():
            values[:, noisy] += rng.normal(
                0.0, arrays.noises[noisy], size=(T, int(noisy.sum()))
            )
        nonneg = arrays.nonneg
        if nonneg.any():
            # Domain-non-negative gauges: measurement noise must not
            # drive e.g. cpu.steal below zero.
            values[:, nonneg] = np.maximum(values[:, nonneg], 0.0)
        counters = arrays.counters
        if counters.any():
            # Counter metrics accumulate; preprocessing differentiates back.
            values[:, counters] = np.cumsum(
                np.maximum(values[:, counters], 0.0), axis=0
            )
        return values

    def synthesize_rows(
        self,
        specs: list[MetricSpec],
        states: np.ndarray,
        rngs,
        noise_scratch: np.ndarray | None = None,
    ) -> np.ndarray:
        """Driver + noise synthesis for many *independent streams* at once.

        ``states`` has shape ``(N, n_channels)`` -- one tick of N
        different streams; ``rngs[i]`` is stream *i*'s generator.  Row
        *i* of the result is bitwise what :meth:`synthesize_step` would
        produce from ``states[i]`` and ``rngs[i]``: the driver math is
        elementwise, and each stream's Gaussian draw is one k-vector
        ``standard_normal`` into a scratch row scaled by the per-metric
        sigmas -- the same bit-generator consumption and the same
        floating-point product as ``rng.normal(0.0, sigma)``.

        Counter accumulation and rate conversion are left to the caller
        (they carry cross-tick state; see
        :class:`repro.fleet.telemetry.FleetTelemetryStream`).
        """
        arrays = self.spec_arrays(specs)
        n = states.shape[0]
        values = states[:, arrays.channels]
        np.multiply(values, arrays.gains, out=values)
        np.add(values, arrays.bases, out=values)
        if arrays.complement_idx.size:
            raw = (
                states[:, arrays.channels[arrays.complement]]
                * arrays.gains[arrays.complement]
            )
            values[:, arrays.complement_idx] = (
                100.0 - raw + arrays.bases[arrays.complement]
            )
        k = arrays.noisy_idx.size
        if k:
            if noise_scratch is None or noise_scratch.shape != (n, k):
                noise_scratch = np.empty((n, k))
            for rng, scratch_row in zip(rngs, noise_scratch):
                rng.standard_normal(out=scratch_row)
            np.multiply(noise_scratch, arrays.sigma, out=noise_scratch)
            values[:, arrays.noisy_idx] += noise_scratch
        if arrays.nonneg_idx.size:
            values[:, arrays.nonneg_idx] = np.maximum(
                values[:, arrays.nonneg_idx], 0.0
            )
        return values

    def synthesize_step(
        self,
        specs: list[MetricSpec],
        state_row: np.ndarray,
        rng: np.random.Generator,
        counter_accum: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """One-tick metric synthesis: the streaming counterpart of
        :meth:`synthesize`.

        ``state_row`` has shape ``(n_channels,)``; ``counter_accum``
        carries the running cumulative sums of the counter columns
        (pass the returned accumulator back in on the next tick; pass
        ``None`` on the first).  Feeding the rows of a state matrix
        through this method with a fresh ``rng`` reproduces
        :meth:`synthesize` bitwise: per-row driver arithmetic is
        elementwise, Gaussian draws happen in the same order, and the
        running accumulator performs the same sequential additions as
        ``np.cumsum``.
        """
        arrays = self.spec_arrays(specs)
        values = state_row[arrays.channels] * arrays.gains + arrays.bases
        complement = arrays.complement
        if complement.any():
            raw = (
                state_row[arrays.channels[complement]] * arrays.gains[complement]
            )
            values[complement] = 100.0 - raw + arrays.bases[complement]
        noisy = arrays.noisy
        if noisy.any():
            values[noisy] += rng.normal(0.0, arrays.noises[noisy])
        nonneg = arrays.nonneg
        if nonneg.any():
            values[nonneg] = np.maximum(values[nonneg], 0.0)
        counters = arrays.counters
        if counter_accum is None:
            counter_accum = np.zeros(int(counters.sum()))
        if counters.any():
            counter_accum = counter_accum + np.maximum(values[counters], 0.0)
            values[counters] = counter_accum
        return values, counter_accum


# ----------------------------------------------------------------------
# Catalog construction
# ----------------------------------------------------------------------
_VMSTAT_FIELDS = [
    "nr_free_pages", "nr_alloc_batch", "nr_inactive_anon", "nr_active_anon",
    "nr_inactive_file", "nr_active_file", "nr_unevictable", "nr_mlock",
    "nr_anon_pages", "nr_mapped", "nr_file_pages", "nr_dirty", "nr_writeback",
    "nr_slab_reclaimable", "nr_slab_unreclaimable", "nr_page_table_pages",
    "nr_kernel_stack", "nr_unstable", "nr_bounce", "nr_vmscan_write",
    "nr_vmscan_immediate_reclaim", "nr_writeback_temp", "nr_isolated_anon",
    "nr_isolated_file", "nr_shmem", "nr_dirtied", "nr_written",
    "pgpgin", "pgpgout", "pswpin", "pswpout",
    "pgalloc_dma", "pgalloc_dma32", "pgalloc_normal", "pgalloc_movable",
    "pgfree", "pgactivate", "pgdeactivate", "pgfault", "pgmajfault",
    "pgrefill_dma", "pgrefill_normal", "pgsteal_kswapd_normal",
    "pgsteal_direct_normal", "pgscan_kswapd_normal", "pgscan_direct_normal",
    "pginodesteal", "slabs_scanned", "kswapd_inodesteal",
    "kswapd_low_wmark_hit_quickly", "kswapd_high_wmark_hit_quickly",
    "pageoutrun", "allocstall", "pgrotated",
    "numa_hit", "numa_miss", "numa_foreign", "numa_interleave",
    "numa_local", "numa_other",
    "workingset_refault", "workingset_activate", "workingset_nodereclaim",
    "nr_anon_transparent_hugepages", "nr_free_cma",
    "thp_fault_alloc", "thp_fault_fallback", "thp_collapse_alloc",
    "thp_collapse_alloc_failed", "thp_split",
    "unevictable_pgs_culled", "unevictable_pgs_scanned",
    "unevictable_pgs_rescued", "unevictable_pgs_mlocked",
    "unevictable_pgs_munlocked", "unevictable_pgs_cleared",
    "unevictable_pgs_stranded", "htlb_buddy_alloc_success",
]

_SLAB_CACHES = [
    "kmalloc_8", "kmalloc_16", "kmalloc_32", "kmalloc_64", "kmalloc_96",
    "kmalloc_128", "kmalloc_192", "kmalloc_256", "kmalloc_512",
    "kmalloc_1k", "kmalloc_2k", "kmalloc_4k", "kmalloc_8k",
    "dentry", "inode_cache", "ext4_inode_cache", "buffer_head",
    "radix_tree_node", "task_struct", "mm_struct", "vm_area_struct",
    "anon_vma", "files_cache", "signal_cache", "sighand_cache",
    "sock_inode_cache", "tcp_sock", "udp_sock", "request_sock_tcp",
    "skbuff_head_cache", "skbuff_fclone_cache", "cred_jar", "pid",
    "shmem_inode_cache", "proc_inode_cache", "sigqueue", "bdev_cache",
    "kernfs_node_cache", "mnt_cache", "filp", "names_cache", "key_jar",
    "nsproxy", "posix_timers_cache", "uid_cache", "dmaengine_unmap_128",
    "dmaengine_unmap_256", "mqueue_inode_cache", "v9fs_inode_cache",
    "fuse_inode", "ecryptfs_inode_cache", "fat_inode_cache",
    "hugetlbfs_inode_cache", "squashfs_inode_cache", "jbd2_journal_head",
    "ext4_extent_status", "dquot", "rpc_inode_cache", "UNIX",
    "tw_sock_TCP", "request_queue", "blkdev_requests", "biovec_256",
    "bio_0", "btree_node", "uts_namespace", "dma_heap",
]


def _host_specs() -> list[MetricSpec]:
    H = HOST_CHANNELS
    specs: list[MetricSpec] = []

    def add(name, channel, **kw):
        specs.append(MetricSpec(name=name, scope=Scope.HOST, channel=H[channel], **kw))

    # --- kernel.all.cpu.* : the designated host CPU utilization --------
    add("kernel.all.cpu.util", "cpu_util", utilization=True, noise=0.8,
        domain=Domain.CPU)
    add("kernel.all.cpu.user", "cpu_util", gain=0.68, noise=1.0, domain=Domain.CPU)
    add("kernel.all.cpu.sys", "cpu_util", gain=0.22, noise=0.6, domain=Domain.CPU)
    add("kernel.all.cpu.idle", "cpu_util", transform="complement100", noise=1.0,
        domain=Domain.CPU)
    add("kernel.all.cpu.wait.total", "io_wait", noise=0.5, domain=Domain.CPU)
    add("kernel.all.cpu.irq.total", "interrupts", gain=0.0004, noise=0.1,
        domain=Domain.CPU)
    add("kernel.all.cpu.nice", "one", base=0.1, noise=0.05, domain=Domain.CPU,
        nonnegative=True)
    # Steal is driven by the *real* fair-share shortfall on the node:
    # % of cores co-located tenants took from runnable demand this tick.
    add("kernel.all.cpu.steal", "cpu_steal", noise=0.02, domain=Domain.CPU,
        nonnegative=True)
    add("kernel.all.cpu.guest", "one", base=0.0, noise=0.0, domain=Domain.CPU,
        nonnegative=True)
    add("kernel.all.load.1m", "load_avg", noise=0.15)
    add("kernel.all.load.5m", "load_avg", gain=0.9, noise=0.1)
    add("kernel.all.load.15m", "load_avg", gain=0.8, noise=0.08)

    # --- kernel.all.* ---------------------------------------------------
    add("kernel.all.pswitch", "pswitch", noise=180.0, counter=True)
    add("kernel.all.intr", "interrupts", noise=120.0, counter=True)
    add("kernel.all.nprocs", "nprocs", noise=1.0)
    add("kernel.all.nusers", "one", base=3.0, noise=0.0)
    add("kernel.all.runnable", "load_avg", gain=1.1, noise=0.4)
    add("kernel.all.blocked", "disk_aveq", gain=0.5, noise=0.3)
    add("kernel.all.sysfork", "pswitch", gain=0.002, noise=1.0, counter=True)
    add("kernel.all.syscall", "pswitch", gain=18.0, noise=4000.0, counter=True)
    add("kernel.all.uptime", "one", base=86400.0, counter=True)

    # --- per-CPU splits (48-core catalog; smaller hosts report zeros) ---
    for cpu in range(48):
        spread = 1.0 + 0.25 * np.sin(cpu)  # cores are not perfectly balanced
        for field, channel, gain, noise in [
            ("user", "cpu_util", 0.68 * spread, 2.0),
            ("sys", "cpu_util", 0.22 * spread, 1.2),
            ("idle", "cpu_util", spread, 2.0),
            ("wait", "io_wait", spread, 1.0),
            ("irq", "interrupts", 0.0002 * spread, 0.1),
            ("nice", "one", 0.0, 0.05),
        ]:
            transform = "complement100" if field == "idle" else "identity"
            add(
                f"kernel.percpu.cpu.{field}.cpu{cpu}",
                channel,
                gain=gain,
                noise=noise,
                transform=transform,
                domain=Domain.CPU,
                nonnegative=field == "nice",
            )

    # --- memory ----------------------------------------------------------
    add("mem.util.used_pct", "mem_util", utilization=True, noise=0.4,
        domain=Domain.MEMORY)
    for field, channel, gain, base, noise in [
        ("used", "mem_used_log", 1.0, 0.0, 0.05),
        ("free", "mem_util", -0.01, 1.2, 0.02),
        ("available", "mem_util", -0.009, 1.1, 0.02),
        ("bufmem", "one", 0.0, 18.0, 0.3),
        ("cached", "mem_used_log", 0.8, 2.0, 0.1),
        ("dirty", "disk_util", 0.05, 0.5, 0.2),
        ("writeback", "disk_util", 0.02, 0.1, 0.1),
        ("slab", "nprocs", 0.002, 1.0, 0.05),
        ("swapCached", "page_in", 0.0005, 0.1, 0.05),
        ("swapTotal", "one", 0.0, 8e6, 0.0),
        ("swapFree", "page_in", -0.01, 8e6, 50.0),
        ("active", "mem_used_log", 0.7, 1.0, 0.1),
        ("inactive", "mem_used_log", 0.3, 1.5, 0.1),
        ("committed_AS", "mem_used_log", 1.2, 3.0, 0.1),
        ("mapped", "nprocs", 0.01, 2.0, 0.1),
        ("shmem", "one", 0.0, 4.0, 0.1),
        ("kernelStack", "nprocs", 0.004, 0.5, 0.02),
        ("pageTables", "nprocs", 0.006, 0.8, 0.03),
        ("vmallocUsed", "one", 0.0, 6.0, 0.05),
    ]:
        add(f"mem.util.{field}", channel, gain=gain, base=base, noise=noise,
            bytes_like=field in ("used", "cached", "active", "inactive",
                                 "committed_AS"),
            domain=Domain.MEMORY)

    # --- mem.vmstat.* ------------------------------------------------------
    vmstat_drivers = {
        "nr_inactive_anon": ("mem_util", 40.0, 120.0, 25.0),
        "nr_active_anon": ("mem_util", 60.0, 300.0, 30.0),
        "nr_inactive_file": ("page_in", 0.8, 900.0, 40.0),
        "nr_active_file": ("mem_util", 25.0, 600.0, 30.0),
        "nr_kernel_stack": ("nprocs", 2.0, 50.0, 4.0),
        "nr_mapped": ("nprocs", 8.0, 400.0, 20.0),
        "nr_dirty": ("disk_util", 6.0, 40.0, 8.0),
        "nr_writeback": ("disk_util", 2.0, 5.0, 3.0),
        "pgpgin": ("page_in", 1.0, 10.0, 15.0),
        "pgpgout": ("disk_util", 120.0, 30.0, 25.0),
        "pswpin": ("page_in", 0.2, 0.0, 2.0),
        "pswpout": ("page_in", 0.1, 0.0, 1.0),
        "pgfault": ("pswitch", 0.8, 500.0, 200.0),
        "pgmajfault": ("page_in", 0.05, 0.5, 1.0),
        "pgfree": ("pswitch", 1.2, 800.0, 250.0),
        "pgactivate": ("mem_util", 30.0, 100.0, 40.0),
        "allocstall": ("page_in", 0.02, 0.0, 0.5),
        "workingset_refault": ("page_in", 0.3, 0.0, 5.0),
    }
    counter_vmstat = {
        "pgpgin", "pgpgout", "pswpin", "pswpout", "pgfault", "pgmajfault",
        "pgfree", "pgactivate", "allocstall", "workingset_refault",
    }
    for field in _VMSTAT_FIELDS:
        if field in vmstat_drivers:
            channel, gain, base, noise = vmstat_drivers[field]
            add(f"mem.vmstat.{field}", channel, gain=gain, base=base,
                noise=noise, counter=field in counter_vmstat,
                domain=Domain.MEMORY)
        else:
            add(f"mem.vmstat.{field}", "one", gain=0.0, base=50.0, noise=6.0,
                domain=Domain.MEMORY)

    # --- mem.numa.* --------------------------------------------------------
    for numa_node in range(2):
        for field in ("alloc_hit", "alloc_miss", "alloc_foreign",
                      "alloc_interleave_hit", "alloc_local_node",
                      "alloc_other_node"):
            add(f"mem.numa.{field}.node{numa_node}", "pswitch",
                gain=0.3 if "hit" in field or "local" in field else 0.001,
                base=10.0, noise=30.0, counter=True, domain=Domain.MEMORY)

    # --- TCP / network ------------------------------------------------------
    add("network.tcp.currestab", "tcp_established", noise=1.5)
    for field, gain, noise, counter in [
        ("activeopens", 0.4, 3.0, True), ("passiveopens", 0.5, 3.0, True),
        ("attemptfails", 0.002, 0.3, True), ("estabresets", 0.004, 0.3, True),
        ("insegs", 30.0, 60.0, True), ("outsegs", 32.0, 60.0, True),
        ("retranssegs", 0.02, 0.6, True), ("inerrs", 0.0005, 0.05, True),
        ("outrsts", 0.003, 0.2, True), ("timeouts", 0.005, 0.2, True),
        ("delayedacks", 6.0, 10.0, True), ("listendrops", 0.001, 0.05, True),
        ("synretrans", 0.002, 0.1, True), ("fastretrans", 0.004, 0.2, True),
        ("slowstartretrans", 0.002, 0.1, True),
    ]:
        add(f"network.tcp.{field}", "tcp_established", gain=gain, noise=noise,
            counter=counter)
    for field, gain in [("rtoalgorithm", 0.0), ("rtomin", 0.0), ("rtomax", 0.0),
                        ("maxconn", 0.0)]:
        add(f"network.tcp.{field}", "one", gain=gain, base=200.0)
    for state_name, gain, base in [
        ("established", 1.0, 0.0), ("syn_sent", 0.01, 0.2),
        ("syn_recv", 0.015, 0.3), ("fin_wait1", 0.01, 0.2),
        ("fin_wait2", 0.01, 0.2), ("time_wait", 0.4, 5.0),
        ("close", 0.005, 0.1), ("close_wait", 0.01, 0.2),
        ("last_ack", 0.005, 0.1), ("listen", 0.0, 12.0),
        ("closing", 0.002, 0.05),
    ]:
        add(f"network.tcpconn.{state_name}", "tcp_established", gain=gain,
            base=base, noise=max(0.3, gain))
    for field, gain, base in [
        ("tcp.inuse", 1.05, 8.0), ("tcp.orphan", 0.01, 0.2),
        ("tcp.tw", 0.4, 5.0), ("tcp.alloc", 1.2, 10.0), ("tcp.mem", 0.3, 4.0),
        ("udp.inuse", 0.0, 4.0), ("udp.mem", 0.0, 1.0),
        ("raw.inuse", 0.0, 0.0), ("frag.inuse", 0.0, 0.0),
        ("frag.memory", 0.0, 0.0),
    ]:
        add(f"network.sockstat.{field}", "tcp_established", gain=gain,
            base=base, noise=1.0 if gain else 0.2)
    for field in ("indatagrams", "outdatagrams", "noports", "inerrors",
                  "recvbuferrors", "sndbuferrors"):
        add(f"network.udp.{field}", "one", base=2.0, noise=0.5, counter=True)
    for field in ("inmsgs", "outmsgs", "inerrors", "indestunreachs",
                  "outdestunreachs"):
        add(f"network.icmp.{field}", "one", base=0.5, noise=0.2, counter=True)
    for field, gain in [
        ("inreceives", 32.0), ("outrequests", 33.0), ("indelivers", 31.0),
        ("forwdatagrams", 0.0), ("indiscards", 0.001), ("outdiscards", 0.001),
        ("inhdrerrors", 0.0005), ("fragoks", 0.01), ("fragfails", 0.0),
        ("reasmoks", 0.01),
    ]:
        add(f"network.ip.{field}", "net_packets", gain=gain / 32.0, noise=20.0,
            counter=True)
    for iface, share in [("eth0", 0.96), ("eth1", 0.01), ("lo", 0.25),
                         ("docker0", 0.7)]:
        for direction in ("in", "out"):
            add(f"network.interface.{direction}.bytes.{iface}", "net_util",
                gain=share * 1.25e7, noise=1e4, counter=True, bytes_like=True)
            add(f"network.interface.{direction}.packets.{iface}",
                "net_packets", gain=share, noise=40.0, counter=True)
            add(f"network.interface.{direction}.errors.{iface}", "one",
                base=0.0, noise=0.02, counter=True)
            add(f"network.interface.{direction}.drops.{iface}", "net_util",
                gain=0.001 * share, noise=0.05, counter=True)

    # --- disk ----------------------------------------------------------------
    add("disk.all.aveq", "disk_aveq", noise=0.6)
    for field, channel, gain, noise, counter, is_bytes in [
        ("read", "disk_util", 8.0, 4.0, True, False),
        ("write", "disk_util", 12.0, 5.0, True, False),
        ("total", "disk_util", 20.0, 8.0, True, False),
        ("read_bytes", "page_in", 1000.0, 2e4, True, True),
        ("write_bytes", "disk_util", 4e6, 3e4, True, True),
        ("total_bytes", "disk_util", 5e6, 5e4, True, True),
        ("avactive", "disk_util", 9.0, 1.5, False, False),
        ("read_merge", "disk_util", 1.0, 0.8, True, False),
        ("write_merge", "disk_util", 2.0, 1.0, True, False),
        ("blkread", "page_in", 2.0, 30.0, True, False),
        ("blkwrite", "disk_util", 8000.0, 60.0, True, False),
    ]:
        add(f"disk.all.{field}", channel, gain=gain, noise=noise,
            counter=counter, bytes_like=is_bytes)
    for dev, share in [("sda", 0.85), ("sdb", 0.1), ("sdc", 0.03),
                       ("sdd", 0.02)]:
        for field, channel, gain in [
            ("read", "page_in", 2.0 * share),
            ("write", "disk_util", 12.0 * share),
            ("read_bytes", "page_in", 1000.0 * share),
            ("write_bytes", "disk_util", 4e6 * share),
            ("avactive", "disk_util", 9.0 * share),
            ("aveq", "disk_aveq", share),
            ("total", "disk_util", 20.0 * share),
        ]:
            add(f"disk.dev.{field}.{dev}", channel, gain=gain,
                noise=max(0.3, gain * 0.05),
                counter=field not in ("avactive", "aveq"),
                bytes_like="bytes" in field)

    # --- vfs / filesystems ------------------------------------------------
    add("vfs.files.count", "nprocs", gain=18.0, base=2000.0, noise=40.0)
    add("vfs.files.free", "nprocs", gain=-6.0, base=8000.0, noise=30.0)
    add("vfs.files.max", "one", base=3.2e6)
    add("vfs.inodes.count", "nprocs", gain=9.0, base=1.5e5, noise=100.0)
    add("vfs.inodes.free", "nprocs", gain=-9.0, base=4.2e5, noise=120.0)
    add("vfs.dentry.count", "nprocs", gain=30.0, base=3e5, noise=300.0)
    for mount in ("root", "var", "data", "docker"):
        for field, gain, base in [
            ("capacity", 0.0, 4.5e8), ("used", 0.02, 1.1e8),
            ("free", -0.02, 3.4e8), ("avail", -0.02, 3.2e8),
            ("full", 0.01, 24.0), ("usedfiles", 0.0, 8e5),
            ("freefiles", 0.0, 2.4e7),
        ]:
            add(f"filesys.{field}.{mount}", "disk_util", gain=gain * 1e6 if abs(gain) > 0 else 0.0,
                base=base, noise=base * 1e-5,
                domain=Domain.FILESYSTEM)

    # --- swap / hinv / proc -------------------------------------------------
    for field, channel, gain in [
        ("pagesin", "page_in", 0.25), ("pagesout", "page_in", 0.1),
        ("in", "page_in", 0.25), ("out", "page_in", 0.1),
        ("free", "page_in", -2.0), ("used", "page_in", 2.0),
        ("length", "one", 0.0),
    ]:
        add(f"swap.{field}", channel, gain=gain, base=8e6 if field in ("free", "length") else 0.0,
            noise=1.0, counter=field in ("pagesin", "pagesout", "in", "out"),
            domain=Domain.MEMORY)
    add("hinv.ncpu", "one", base=48.0, domain=Domain.CPU)
    add("hinv.ndisk", "one", base=4.0, domain=Domain.DISK)
    add("hinv.ninterface", "one", base=4.0, domain=Domain.NETWORK)
    add("hinv.nnode", "one", base=2.0)
    add("hinv.physmem", "one", base=128000.0, domain=Domain.MEMORY)
    add("hinv.pagesize", "one", base=4096.0, domain=Domain.MEMORY)
    add("hinv.nfilesys", "one", base=4.0, domain=Domain.FILESYSTEM)
    for field, channel, gain, base in [
        ("runnable", "load_avg", 1.0, 1.0), ("blocked", "disk_aveq", 0.5, 0.0),
        ("sleeping", "nprocs", 0.9, 0.0), ("defunct", "one", 0.0, 0.0),
        ("stopped", "one", 0.0, 0.0), ("kernel", "one", 0.0, 90.0),
    ]:
        add(f"proc.runq.{field}", channel, gain=gain, base=base, noise=0.5)

    # --- memory-bandwidth proxy (perf-event style) ---------------------------
    add("perfevent.hwcounters.mem_load.value", "membw_util", gain=1e7,
        noise=5e4, counter=True, domain=Domain.MEMORY)
    add("perfevent.hwcounters.mem_store.value", "membw_util", gain=4e6,
        noise=2e4, counter=True, domain=Domain.MEMORY)
    add("perfevent.hwcounters.llc_misses.value", "membw_util", gain=2e6,
        noise=2e4, counter=True, domain=Domain.MEMORY)

    # --- slab caches: the realistic filler family ----------------------------
    remaining = N_HOST_METRICS - len(specs)
    if remaining < 0:
        raise AssertionError(
            f"Host catalog overflow: {len(specs)} > {N_HOST_METRICS}."
        )
    fields = ("objects", "active", "size", "objsize", "pages_per_slab",
              "num_slabs")
    produced = 0
    for cache in _SLAB_CACHES:
        for fld in fields:
            if produced >= remaining:
                break
            coupled = cache in ("tcp_sock", "skbuff_head_cache", "filp",
                                "sock_inode_cache", "UNIX")
            add(
                f"mem.slabinfo.{fld}.{cache}",
                "tcp_established" if coupled else "one",
                gain=2.0 if coupled else 0.0,
                base=300.0,
                noise=12.0,
                domain=Domain.MEMORY,
            )
            produced += 1
    if len(specs) != N_HOST_METRICS:
        raise AssertionError(
            f"Host catalog has {len(specs)} metrics, expected {N_HOST_METRICS}; "
            "extend the slab filler list."
        )
    return specs


def _container_specs() -> list[MetricSpec]:
    C = CONTAINER_CHANNELS
    specs: list[MetricSpec] = []

    def add(name, channel, **kw):
        specs.append(
            MetricSpec(name=name, scope=Scope.CONTAINER, channel=C[channel], **kw)
        )

    # Derived relative utilizations (Table 4 naming).
    add("C-CPU-U", "cpu_rel_util", utilization=True, noise=0.8, domain=Domain.CPU)
    add("C-CPU-HOST-U", "cpu_host_util", noise=0.5, domain=Domain.CPU)
    add("C-MEM-U-usage", "mem_limit_util", utilization=True, noise=0.4,
        domain=Domain.MEMORY)
    for field, gain, base in [
        ("mapped", 0.25, 2.0), ("active_file", 0.3, 4.0),
        ("inactive_file", 0.2, 6.0), ("cache", 0.45, 8.0),
        ("rss", 0.55, 10.0), ("swap", 0.02, 0.0), ("kernel_stack", 0.01, 0.5),
    ]:
        add(f"S-MEM-U-{field}", "mem_limit_util", gain=gain, base=base,
            noise=0.5, domain=Domain.MEMORY)

    # cgroup CPU accounting.
    add("cgroup.cpuacct.usage", "cpu_host_util", gain=4.8e8, noise=1e6,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpuacct.usage_user", "cpu_host_util", gain=3.6e8, noise=8e5,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpuacct.usage_sys", "cpu_host_util", gain=1.2e8, noise=4e5,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpuacct.stat.user", "cpu_host_util", gain=36.0, noise=1.0,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpuacct.stat.system", "cpu_host_util", gain=12.0, noise=0.5,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpusched.periods", "periods", counter=True, domain=Domain.CPU)
    add("cgroup.cpusched.throttled", "throttled", counter=True, domain=Domain.CPU)
    add("cgroup.cpusched.throttled_time", "throttled", gain=1e7, noise=1e5,
        counter=True, domain=Domain.CPU)
    add("cgroup.cpu.shares", "one", base=1024.0, domain=Domain.CPU)
    add("cgroup.cpu.cfs_period_us", "one", base=100000.0, domain=Domain.CPU)
    add("cgroup.cpu.cfs_quota_us", "one", base=0.0, domain=Domain.CPU)

    # cgroup memory accounting.
    for field, channel, gain, base, counter in [
        ("usage", "mem_usage_log", 1.0, 0.0, False),
        ("max_usage", "mem_usage_log", 1.02, 0.2, False),
        ("limit", "one", 22.0, 0.0, False),
        ("failcnt", "page_in_log", 0.05, 0.0, True),
        ("cache", "mem_usage_log", 0.6, 0.5, False),
        ("rss", "mem_usage_log", 0.8, 0.3, False),
        ("rss_huge", "one", 0.0, 2.0, False),
        ("mapped_file", "mem_usage_log", 0.3, 0.4, False),
        ("swap", "page_in_log", 0.2, 0.0, False),
        ("pgpgin", "page_in_log", 1.0, 1.0, True),
        ("pgpgout", "mem_usage_log", 0.2, 1.0, True),
        ("pgfault", "connections", 12.0, 100.0, True),
        ("pgmajfault", "page_in_log", 0.4, 0.0, True),
        ("active_anon", "mem_usage_log", 0.75, 0.2, False),
        ("inactive_anon", "mem_usage_log", 0.15, 0.4, False),
        ("active_file", "mem_usage_log", 0.4, 0.6, False),
        ("inactive_file", "page_in_log", 0.5, 2.0, False),
        ("unevictable", "one", 0.0, 0.0, False),
        ("writeback", "disk_write_log", 0.2, 0.0, False),
        ("dirty", "disk_write_log", 0.3, 0.2, False),
    ]:
        add(f"cgroup.memory.{field}", channel, gain=gain, base=base,
            noise=0.3, counter=counter, domain=Domain.MEMORY,
            bytes_like=field in ("usage", "max_usage", "cache", "rss"))

    # cgroup block IO.
    for field, channel, gain, counter in [
        ("read_bytes", "disk_read_log", 1.0, True),
        ("write_bytes", "disk_write_log", 1.0, True),
        ("reads", "disk_read_log", 0.3, True),
        ("writes", "disk_write_log", 0.3, True),
        ("time", "disk_read_log", 0.5, True),
        ("sectors", "disk_read_log", 0.8, True),
        ("queued", "disk_read_log", 0.2, False),
        ("merged", "disk_write_log", 0.1, True),
        ("wait_time", "disk_read_log", 0.6, True),
        ("service_time", "disk_read_log", 0.4, True),
    ]:
        add(f"cgroup.blkio.{field}", channel, gain=gain, noise=0.3,
            counter=counter, domain=Domain.DISK)

    # Per-container network (docker stats style).
    for field, channel, gain, counter in [
        ("rx_bytes", "rx_log", 1.0, True), ("tx_bytes", "tx_log", 1.0, True),
        ("rx_packets", "rx_log", 0.4, True), ("tx_packets", "tx_log", 0.4, True),
        ("rx_errors", "one", 0.0, True), ("tx_errors", "one", 0.0, True),
        ("rx_dropped", "one", 0.0, True), ("tx_dropped", "one", 0.0, True),
    ]:
        add(f"container.network.{field}", channel, gain=gain,
            noise=0.2 if gain else 0.02, counter=counter,
            domain=Domain.NETWORK, bytes_like="bytes" in field)

    # Container process stats.
    add("container.nprocs", "processes", noise=0.3)
    add("container.nthreads", "processes", gain=8.0, noise=1.0)
    add("container.fds", "connections", gain=3.0, base=32.0, noise=2.0)
    add("container.sockets", "connections", gain=1.1, base=4.0, noise=1.0)
    add("container.tcpconns", "connections", noise=0.8, domain=Domain.NETWORK)

    # Pad with per-CPU cpuacct splits up to the container metric budget.
    remaining = N_CONTAINER_METRICS - len(specs)
    if remaining < 0:
        raise AssertionError(
            f"Container catalog overflow: {len(specs)} > {N_CONTAINER_METRICS}."
        )
    for cpu in range(remaining):
        add(f"cgroup.cpuacct.percpu.cpu{cpu}", "cpu_host_util",
            gain=1e7 * (1.0 + 0.2 * np.sin(cpu)), noise=5e4, counter=True,
            domain=Domain.CPU)
    if len(specs) != N_CONTAINER_METRICS:
        raise AssertionError(
            f"Container catalog has {len(specs)}, expected {N_CONTAINER_METRICS}."
        )
    return specs


_DEFAULT: MetricCatalog | None = None


def default_catalog() -> MetricCatalog:
    """The standard 952 + 88 catalog (cached; it is immutable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = MetricCatalog(host=_host_specs(), container=_container_specs())
    return _DEFAULT
