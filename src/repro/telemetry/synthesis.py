"""Batched state extraction: simulation ticks -> state matrices.

This is the struct-of-arrays core shared by
:meth:`repro.telemetry.agent.TelemetryAgent.host_state` /
``container_state`` (one container, many ticks -- the corpus path) and
:class:`repro.fleet.telemetry.FleetTelemetryStream` (many containers,
one tick -- the serving path).  Both callers used to run a Python loop
per (container, tick) doing ~20 scalar float operations; here the tick
fields are gathered once into a ``(n, N_FIELDS)`` float64 matrix and
every state channel is computed as a vector op over the whole batch.

The contract is bitwise equality with the original per-offset scalar
loops.  Every vectorized expression below replicates the scalar
arithmetic operation for operation: numpy elementwise ``*``, ``/``,
``+``, ``log1p``, ``minimum`` and ``maximum`` on float64 produce the
same IEEE-754 results as the equivalent Python-float expressions, and
the host accumulation preserves the reference's per-cell addition
order (baseline first, then one addition per container in
``node.containers`` order).  Ticks outside the container's recorded
history contribute all-zero field rows; adding the resulting zero
contributions is bitwise-neutral because every partial sum here is
non-negative (``x + 0.0 == x`` except at ``-0.0``, which cannot occur).
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.catalog import (
    CONTAINER_CHANNELS,
    HOST_CHANNELS,
    N_CONTAINER_CHANNELS,
    N_HOST_CHANNELS,
)

__all__ = [
    "N_FIELDS",
    "ZERO_FIELDS",
    "tick_fields",
    "gather_container_fields",
    "host_baseline",
    "host_additive_contributions",
    "host_derived",
    "container_state_from_fields",
]

# ----------------------------------------------------------------------
# Raw per-tick field layout (one row per container-tick)
# ----------------------------------------------------------------------
F_USED_CORES = 0
F_USAGE_BYTES = 1
F_PAGE_IN_BYTES = 2
F_LIMIT_UTIL = 3
F_NR_THROTTLED = 4
F_DISK_READ = 5
F_DISK_WRITE = 6
F_NET_RX = 7
F_NET_TX = 8
F_TCP = 9
F_PROCESSES = 10
F_THROUGHPUT = 11
F_CPU_STEAL = 12
F_MEMBW = 13
F_DISK_SHORTFALL = 14
N_FIELDS = 15

ZERO_FIELDS: tuple = (0.0,) * N_FIELDS

_H = HOST_CHANNELS
_C = CONTAINER_CHANNELS


def tick_fields(container, t: int):
    """The raw field tuple for one recorded tick, or ``None``.

    Equivalent to reading the attributes off ``container.tick_at(t)``
    but without constructing intermediate objects.
    """
    index = t - container.created_at
    history = container.history
    if index < 0 or index >= len(history):
        return None
    tick = history[index]
    cpu = tick.cpu
    memory = tick.memory
    return (
        cpu.used_cores,
        memory.usage_bytes,
        memory.page_in_bytes,
        memory.limit_utilization,
        cpu.nr_throttled,
        tick.disk_read_bytes,
        tick.disk_write_bytes,
        tick.network_rx_bytes,
        tick.network_tx_bytes,
        tick.tcp_connections,
        tick.processes,
        tick.throughput,
        tick.cpu_steal_cores,
        tick.membw_bytes,
        tick.disk_shortfall_bytes,
    )


def gather_container_fields(container, start: int, end: int) -> np.ndarray:
    """Stack ticks ``start..end-1`` into a ``(T, N_FIELDS)`` matrix.

    Ticks the container has not recorded become all-zero rows, which
    downstream vector math treats exactly like the reference loops
    treat a missing tick (zero contribution / zero state).
    """
    T = end - start
    rows: list[tuple] = [ZERO_FIELDS] * T
    history = container.history
    created = container.created_at
    lo = max(start, created)
    hi = min(end, created + len(history))
    for t in range(lo, hi):
        tick = history[t - created]
        cpu = tick.cpu
        memory = tick.memory
        rows[t - start] = (
            cpu.used_cores,
            memory.usage_bytes,
            memory.page_in_bytes,
            memory.limit_utilization,
            cpu.nr_throttled,
            tick.disk_read_bytes,
            tick.disk_write_bytes,
            tick.network_rx_bytes,
            tick.network_tx_bytes,
            tick.tcp_connections,
            tick.processes,
            tick.throughput,
            tick.cpu_steal_cores,
            tick.membw_bytes,
            tick.disk_shortfall_bytes,
        )
    return np.array(rows, dtype=np.float64)


# ----------------------------------------------------------------------
# Host state
# ----------------------------------------------------------------------
def host_baseline(n: int, memory_bytes) -> np.ndarray:
    """OS baseline activity rows for ``n`` host-state rows.

    ``memory_bytes`` may be a scalar (one node over time) or an
    ``(n,)`` array (one row per node entry).
    """
    state = np.zeros((n, N_HOST_CHANNELS))
    state[:, _H["cpu_util"]] = 1.5
    state[:, _H["pswitch"]] = 900.0
    state[:, _H["tcp_established"]] = 40.0
    state[:, _H["nprocs"]] = 180.0
    state[:, _H["interrupts"]] = 1200.0
    state[:, _H["net_packets"]] = 300.0
    state[:, _H["mem_used_log"]] = np.log1p(
        0.05 * np.asarray(memory_bytes, dtype=np.float64)
    )
    state[:, _H["membw_util"]] = 2.0  # OS DRAM background traffic
    return state


def host_additive_contributions(
    fields: np.ndarray,
    cores,
    memory_bytes,
    disk_bandwidth,
    network_bandwidth,
    memory_bandwidth,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Per-row host-channel contributions of one container-tick each.

    The node-spec arguments broadcast: scalars for a single node,
    ``(n,)`` arrays when the rows belong to different nodes.
    """
    n = fields.shape[0]
    if out is None or out.shape != (n, N_HOST_CHANNELS):
        out = np.zeros((n, N_HOST_CHANNELS))
    else:
        out[:] = 0.0
    used = fields[:, F_USED_CORES]
    disk_bytes = fields[:, F_DISK_READ] + fields[:, F_DISK_WRITE]
    net_bytes = fields[:, F_NET_RX] + fields[:, F_NET_TX]
    out[:, _H["cpu_util"]] = 100.0 * used / cores
    out[:, _H["mem_util"]] = 100.0 * fields[:, F_USAGE_BYTES] / memory_bytes
    out[:, _H["disk_util"]] = 100.0 * disk_bytes / disk_bandwidth
    out[:, _H["net_util"]] = 100.0 * net_bytes / network_bandwidth
    out[:, _H["pswitch"]] = 4.0 * fields[:, F_THROUGHPUT]
    out[:, _H["tcp_established"]] = fields[:, F_TCP]
    out[:, _H["nprocs"]] = fields[:, F_PROCESSES]
    out[:, _H["page_in"]] = fields[:, F_PAGE_IN_BYTES] / 1024.0
    out[:, _H["net_packets"]] = net_bytes / 1500.0
    out[:, _H["interrupts"]] = net_bytes / 1500.0 + disk_bytes / 65536.0
    # Interference channels (accumulated in simulation Pass 2/3):
    # steal is each member's fair-share shortfall, membw the DRAM
    # traffic it actually moved, disk_aveq the queue its unserved IO
    # left on the shared device (~8 requests per queued MiB-ish unit).
    out[:, _H["cpu_steal"]] = 100.0 * fields[:, F_CPU_STEAL] / cores
    out[:, _H["membw_util"]] = (
        100.0 * fields[:, F_MEMBW] / memory_bandwidth
    )
    out[:, _H["disk_aveq"]] = (
        8.0 * fields[:, F_DISK_SHORTFALL] / disk_bandwidth
    )
    return out


def host_derived(
    state: np.ndarray, cores, memory_bytes, disk_random_bandwidth
) -> np.ndarray:
    """Fill the derived host channels in place (post-accumulation).

    ``disk_aveq`` arrives carrying the accumulated *interference* queue
    (unserved neighbour IO from the contribution pass) and gains the
    node's own utilization/page-in terms here; ``membw_util`` and
    ``cpu_steal`` are real accumulated node state (DRAM traffic moved,
    fair-share shortfall) and are only range-clamped.
    """
    disk_aveq = np.maximum(
        0.05,
        state[:, _H["disk_util"]] / 100.0 * 4.0
        + state[:, _H["page_in"]]
        / (np.asarray(disk_random_bandwidth, dtype=np.float64) / 1024.0)
        * 8.0
        + state[:, _H["disk_aveq"]],
    )
    state[:, _H["disk_aveq"]] = disk_aveq
    state[:, _H["io_wait"]] = np.minimum(95.0, disk_aveq * 2.0)
    state[:, _H["load_avg"]] = (
        state[:, _H["cpu_util"]] / 100.0 * cores + disk_aveq * 0.5
    )
    state[:, _H["mem_used_log"]] = np.log1p(
        state[:, _H["mem_util"]] / 100.0 * memory_bytes + 0.05 * memory_bytes
    )
    state[:, _H["membw_util"]] = np.minimum(state[:, _H["membw_util"]], 100.0)
    state[:, _H["cpu_steal"]] = np.minimum(state[:, _H["cpu_steal"]], 100.0)
    state[:, _H["cpu_util"]] = np.minimum(state[:, _H["cpu_util"]], 100.0)
    state[:, _H["mem_util"]] = np.minimum(state[:, _H["mem_util"]], 100.0)
    return state


# ----------------------------------------------------------------------
# Container state
# ----------------------------------------------------------------------
def container_state_from_fields(
    fields: np.ndarray, allocation, cores
) -> np.ndarray:
    """Container state rows from raw tick fields.

    ``allocation`` / ``cores`` broadcast like the host spec arguments.
    All-zero field rows (unrecorded ticks) produce the reference's
    untouched zero state: every expression below maps 0 to 0, and the
    constant ``periods`` channel is set unconditionally, exactly like
    the scalar path.
    """
    n = fields.shape[0]
    state = np.zeros((n, N_CONTAINER_CHANNELS))
    state[:, _C["periods"]] = 10.0
    used = fields[:, F_USED_CORES]
    state[:, _C["cpu_rel_util"]] = np.minimum(100.0, 100.0 * used / allocation)
    state[:, _C["cpu_host_util"]] = 100.0 * used / cores
    state[:, _C["throttled"]] = fields[:, F_NR_THROTTLED]
    state[:, _C["mem_limit_util"]] = fields[:, F_LIMIT_UTIL]
    state[:, _C["mem_usage_log"]] = np.log1p(fields[:, F_USAGE_BYTES])
    state[:, _C["rx_log"]] = np.log1p(fields[:, F_NET_RX])
    state[:, _C["tx_log"]] = np.log1p(fields[:, F_NET_TX])
    state[:, _C["connections"]] = fields[:, F_TCP]
    state[:, _C["processes"]] = fields[:, F_PROCESSES]
    state[:, _C["page_in_log"]] = np.log1p(fields[:, F_PAGE_IN_BYTES])
    state[:, _C["disk_read_log"]] = np.log1p(fields[:, F_DISK_READ])
    state[:, _C["disk_write_log"]] = np.log1p(fields[:, F_DISK_WRITE])
    return state
