"""Metric preprocessing: counters to rates, values to percentages.

The paper (section 3.1): "metrics reporting counters must be converted
into rates, and utilization metrics to a relative scale (i.e.,
percentage value) ... necessary to avoid overfitting our model to a
particular hardware configuration."
"""

from __future__ import annotations

import numpy as np

__all__ = ["counters_to_rates", "to_percent"]


def counters_to_rates(
    values: np.ndarray, counter_mask: np.ndarray, interval_seconds: float = 1.0
) -> np.ndarray:
    """Differentiate cumulative counter columns into per-second rates.

    The first sample of a counter has no predecessor; with two or more
    samples we back-fill it with the first computed rate, like PCP
    (rather than emit a bogus 0 or the raw cumulative value).  A
    **single-sample** window has no delta to back-fill from, so its
    lone row gets rate 0.0 -- the same value the causal streaming
    emitter (:mod:`repro.telemetry.stream`) produces for a first tick
    with no successor.  Counter wraps / resets (negative diffs) are
    clamped to 0.
    """
    values = np.asarray(values, dtype=np.float64)
    counter_mask = np.asarray(counter_mask, dtype=bool)
    if values.ndim != 2:
        raise ValueError("values must be 2-D (time x metrics).")
    if counter_mask.shape[0] != values.shape[1]:
        raise ValueError("counter_mask must have one entry per metric column.")
    if interval_seconds <= 0:
        raise ValueError("interval_seconds must be positive.")
    if not counter_mask.any():
        return values.copy()
    result = values.copy()
    counters = values[:, counter_mask]
    rates = np.empty_like(counters)
    if counters.shape[0] == 1:
        rates[0] = 0.0
    else:
        deltas = np.diff(counters, axis=0) / interval_seconds
        deltas = np.maximum(deltas, 0.0)  # counter wrap / restart
        rates[1:] = deltas
        rates[0] = deltas[0]
    result[:, counter_mask] = rates
    return result


def to_percent(values: np.ndarray, capacity: float | np.ndarray) -> np.ndarray:
    """Convert absolute usage to a 0-100 relative scale, clipped."""
    capacity = np.asarray(capacity, dtype=np.float64)
    if np.any(capacity <= 0):
        raise ValueError("capacity must be positive.")
    return np.clip(100.0 * np.asarray(values, dtype=np.float64) / capacity, 0.0, 100.0)
