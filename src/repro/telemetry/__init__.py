"""PCP-like platform telemetry.

The paper collects 1040 platform metrics with Performance Co-Pilot:
952 host-level and 88 container-level (section 3.3).  This package
reproduces that monitoring surface over the simulated cluster:

- :mod:`repro.telemetry.catalog` -- the metric catalog: named metrics
  with scope (host/container), resource domain, semantics (gauge /
  counter / utilization / byte-valued) and a *driver* coupling each
  metric to the simulation state.  Causal metrics (CPU utilization,
  cgroup throttling, TCP connection counts, disk queue, vmstat
  counters, ...) respond to load exactly the way their Linux
  counterparts do; the long tail of filler metrics (per-CPU splits,
  slab caches, protocol counters) carries noise and constants so
  feature selection faces a realistic haystack.
- :mod:`repro.telemetry.agent` -- turns a finished (or running)
  simulation into per-instance sample matrices ``M_{I,t}`` (host
  row of the instance's node concatenated with its container row).
- :mod:`repro.telemetry.rates` -- counter-to-rate and utilization
  normalisation preprocessing (section 3.1).
- :mod:`repro.telemetry.store` -- small time-series containers used to
  pass named series around: the batch :class:`MetricFrame` and the
  streaming :class:`MetricStream` ring buffer.
- :mod:`repro.telemetry.stream` -- per-tick emission
  (:class:`InstanceTelemetryStream`, opened via
  ``TelemetryAgent.open_stream``): one instance row per simulation
  tick with O(1) synthesis state instead of whole-run matrices.
"""

from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import MetricCatalog, MetricSpec, default_catalog
from repro.telemetry.rates import counters_to_rates, to_percent
from repro.telemetry.store import MetricFrame, MetricStream
from repro.telemetry.stream import InstanceTelemetryStream

__all__ = [
    "MetricSpec",
    "MetricCatalog",
    "default_catalog",
    "TelemetryAgent",
    "InstanceTelemetryStream",
    "counters_to_rates",
    "to_percent",
    "MetricFrame",
    "MetricStream",
]
