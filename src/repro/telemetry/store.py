"""Named time-series containers.

:class:`MetricFrame` keeps metric matrices and their column names
together without pulling in a dataframe dependency; supports column
selection, horizontal concatenation and vertical stacking of aligned
frames.

:class:`MetricStream` is its streaming counterpart: a fixed-capacity
ring buffer of metric rows that per-tick producers push into and
per-tick consumers read windows out of, without ever materialising the
whole run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MetricFrame", "MetricStream", "UnknownMetricError"]


class UnknownMetricError(KeyError):
    """A metric name was requested that the frame does not carry.

    Subclasses :class:`KeyError` so historical ``except KeyError``
    handlers keep working, but the message names the missing streams
    and samples what *is* available instead of echoing one bare key.
    """

    def __init__(self, missing: list[str], available: list[str]):
        self.missing = list(missing)
        self.available = list(available)
        preview = ", ".join(sorted(available)[:8])
        if len(available) > 8:
            preview += f", ... ({len(available)} total)"
        super().__init__(
            f"Unknown metric stream(s) {sorted(missing)}; "
            f"available: [{preview}]."
        )

    def __str__(self) -> str:  # KeyError.__str__ repr()s the message
        return self.args[0]


class MetricFrame:
    """A ``(T, k)`` float matrix with named columns."""

    def __init__(self, values: np.ndarray, columns: list[str]):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be 2-D (time x metrics).")
        if values.shape[1] != len(columns):
            raise ValueError(
                f"{len(columns)} column names for {values.shape[1]} columns."
            )
        if len(set(columns)) != len(columns):
            raise ValueError("Column names must be unique.")
        self.values = values
        self.columns = list(columns)
        self._index = {name: i for i, name in enumerate(columns)}

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def has_metric(self, name: str) -> bool:
        """Whether a metric stream of that name is carried."""
        return name in self._index

    def column(self, name: str) -> np.ndarray:
        """One column as a 1-D array (a view)."""
        if name not in self._index:
            raise UnknownMetricError([name], self.columns)
        return self.values[:, self._index[name]]

    def select(self, names: list[str]) -> "MetricFrame":
        """A new frame with only ``names``, in the given order."""
        missing = [n for n in names if n not in self._index]
        if missing:
            raise UnknownMetricError(missing, self.columns)
        indices = [self._index[n] for n in names]
        return MetricFrame(self.values[:, indices].copy(), list(names))

    def select_available(self, names: list[str]) -> "MetricFrame":
        """Like :meth:`select`, but silently skips unknown names.

        The safe-subset accessor for degraded-mode consumers: a report
        that wants ``["cpu_rel_util", "mem_limit_util"]`` from whatever
        survived a lossy collector should summarise the columns that
        exist rather than die on the ones that do not.  Selecting zero
        known names returns an empty ``(T, 0)`` frame.
        """
        known = [n for n in names if n in self._index]
        indices = [self._index[n] for n in known]
        return MetricFrame(self.values[:, indices].copy(), known)

    def hstack(self, other: "MetricFrame") -> "MetricFrame":
        """Concatenate columns of two time-aligned frames."""
        if len(self) != len(other):
            raise ValueError("Frames must have the same number of rows.")
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise ValueError(f"Duplicate columns: {sorted(overlap)[:5]}.")
        return MetricFrame(
            np.hstack([self.values, other.values]), self.columns + other.columns
        )

    @staticmethod
    def vstack(frames: list["MetricFrame"]) -> "MetricFrame":
        """Stack frames with identical columns along time."""
        if not frames:
            raise ValueError("Need at least one frame.")
        columns = frames[0].columns
        for frame in frames[1:]:
            if frame.columns != columns:
                raise ValueError("All frames must share identical columns.")
        return MetricFrame(
            np.vstack([frame.values for frame in frames]), list(columns)
        )


class MetricStream:
    """A fixed-capacity ring buffer of named metric rows.

    The streaming data path appends one row per tick with :meth:`push`;
    only the most recent ``capacity`` rows are retained.  :meth:`window`
    returns the retained tail in chronological order, and
    :meth:`frame` wraps it as a :class:`MetricFrame` for batch-style
    consumers.  Memory is O(capacity x columns) regardless of run
    length.

    Each row carries a *completeness* fraction in [0, 1]: 1.0 for a
    fully observed reading (the default, so historical producers are
    unchanged), lower when some or all of the row was imputed by the
    resilience layer.  Consumers that must distinguish real from
    carried-forward data read :meth:`completeness_window`.
    """

    def __init__(self, columns: list[str], capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1.")
        if len(set(columns)) != len(columns):
            raise ValueError("Column names must be unique.")
        self.columns = list(columns)
        self.capacity = capacity
        self._buffer = np.zeros((capacity, len(columns)))
        self._completeness = np.ones(capacity)
        self._total = 0  # rows ever pushed

    def __len__(self) -> int:
        """Rows currently retained (<= capacity)."""
        return min(self._total, self.capacity)

    @property
    def total(self) -> int:
        """Rows ever pushed, including rows already evicted."""
        return self._total

    def has_metric(self, name: str) -> bool:
        """Whether a metric stream of that name is carried."""
        return name in self.columns

    def push(self, row: np.ndarray, completeness: float = 1.0) -> None:
        """Append one row, evicting the oldest once at capacity."""
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (len(self.columns),):
            raise ValueError(
                f"Expected a row of {len(self.columns)} values, "
                f"got shape {row.shape}."
            )
        if not 0.0 <= completeness <= 1.0:
            raise ValueError("completeness must be in [0, 1].")
        slot = self._total % self.capacity
        self._buffer[slot] = row
        self._completeness[slot] = completeness
        self._total += 1

    def amend_last(
        self, row: np.ndarray, completeness: float | None = None
    ) -> None:
        """Replace the most recent row in place (same tick, new values).

        Used by wrappers that post-process a just-emitted reading --
        dropout substitution, NaN masking, imputation -- without
        advancing the stream clock.  ``completeness`` updates the row's
        flag when given, otherwise the existing flag is kept.
        """
        if self._total == 0:
            raise ValueError("Stream is empty; nothing to amend.")
        row = np.asarray(row, dtype=np.float64)
        if row.shape != (len(self.columns),):
            raise ValueError(
                f"Expected a row of {len(self.columns)} values, "
                f"got shape {row.shape}."
            )
        slot = (self._total - 1) % self.capacity
        self._buffer[slot] = row
        if completeness is not None:
            if not 0.0 <= completeness <= 1.0:
                raise ValueError("completeness must be in [0, 1].")
            self._completeness[slot] = completeness

    def last(self) -> np.ndarray:
        """The most recent row (a copy)."""
        if self._total == 0:
            raise ValueError("Stream is empty.")
        return self._buffer[(self._total - 1) % self.capacity].copy()

    def last_completeness(self) -> float:
        """Completeness flag of the most recent row."""
        if self._total == 0:
            raise ValueError("Stream is empty.")
        return float(self._completeness[(self._total - 1) % self.capacity])

    def window(self, n: int | None = None) -> np.ndarray:
        """The last ``n`` retained rows, oldest first (a copy).

        ``n`` defaults to everything retained; asking for more rows
        than are retained is an error (silent truncation would hide
        warm-up bugs).
        """
        held = len(self)
        if n is None:
            n = held
        if n < 0 or n > held:
            raise ValueError(f"window of {n} rows requested; {held} retained.")
        if n == 0:
            return np.empty((0, len(self.columns)))
        end = self._total % self.capacity
        start = (self._total - n) % self.capacity
        if n < self.capacity and start < end:
            return self._buffer[start:end].copy()
        return np.vstack([self._buffer[start:], self._buffer[:end]])

    def completeness_window(self, n: int | None = None) -> np.ndarray:
        """Per-row completeness flags aligned with :meth:`window`."""
        held = len(self)
        if n is None:
            n = held
        if n < 0 or n > held:
            raise ValueError(f"window of {n} rows requested; {held} retained.")
        if n == 0:
            return np.empty(0)
        end = self._total % self.capacity
        start = (self._total - n) % self.capacity
        if n < self.capacity and start < end:
            return self._completeness[start:end].copy()
        return np.concatenate(
            [self._completeness[start:], self._completeness[:end]]
        )

    def frame(self, n: int | None = None) -> MetricFrame:
        """The retained tail as a :class:`MetricFrame`."""
        return MetricFrame(self.window(n), list(self.columns))
