"""A minimal named time-series frame.

Keeps metric matrices and their column names together without pulling
in a dataframe dependency; supports column selection, horizontal
concatenation and vertical stacking of aligned frames.
"""

from __future__ import annotations

import numpy as np

__all__ = ["MetricFrame"]


class MetricFrame:
    """A ``(T, k)`` float matrix with named columns."""

    def __init__(self, values: np.ndarray, columns: list[str]):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError("values must be 2-D (time x metrics).")
        if values.shape[1] != len(columns):
            raise ValueError(
                f"{len(columns)} column names for {values.shape[1]} columns."
            )
        if len(set(columns)) != len(columns):
            raise ValueError("Column names must be unique.")
        self.values = values
        self.columns = list(columns)
        self._index = {name: i for i, name in enumerate(columns)}

    def __len__(self) -> int:
        return self.values.shape[0]

    @property
    def shape(self) -> tuple[int, int]:
        return self.values.shape

    def column(self, name: str) -> np.ndarray:
        """One column as a 1-D array (a view)."""
        if name not in self._index:
            raise KeyError(f"No column {name!r}.")
        return self.values[:, self._index[name]]

    def select(self, names: list[str]) -> "MetricFrame":
        """A new frame with only ``names``, in the given order."""
        indices = [self._index[n] for n in names]  # KeyError on missing
        return MetricFrame(self.values[:, indices].copy(), list(names))

    def hstack(self, other: "MetricFrame") -> "MetricFrame":
        """Concatenate columns of two time-aligned frames."""
        if len(self) != len(other):
            raise ValueError("Frames must have the same number of rows.")
        overlap = set(self.columns) & set(other.columns)
        if overlap:
            raise ValueError(f"Duplicate columns: {sorted(overlap)[:5]}.")
        return MetricFrame(
            np.hstack([self.values, other.values]), self.columns + other.columns
        )

    @staticmethod
    def vstack(frames: list["MetricFrame"]) -> "MetricFrame":
        """Stack frames with identical columns along time."""
        if not frames:
            raise ValueError("Need at least one frame.")
        columns = frames[0].columns
        for frame in frames[1:]:
            if frame.columns != columns:
                raise ValueError("All frames must share identical columns.")
        return MetricFrame(
            np.vstack([frame.values for frame in frames]), list(columns)
        )
