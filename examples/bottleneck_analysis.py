"""Bottleneck analysis across resource configurations (Table 1 flavor).

Runs the same Cassandra workload under four different cgroup/mix
configurations and shows how the binding resource moves between CPU,
network, disk bandwidth and the IO queue -- the diversity the
monitorless training set is built from -- then inspects which
platform metrics a trained model relies on.

    python examples/bottleneck_analysis.py
"""

from collections import Counter

from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus, generate_session


CONFIGS = [
    (12, "unlimited, read-heavy (B)"),
    (11, "unlimited, update-heavy (A)"),
    (15, "20 cores + 30 GB limit (B)"),
    (24, "1 core, read-modify-write (F)"),
]


def main() -> None:
    print("How the bottleneck moves with configuration (Cassandra):\n")
    for run_id, description in CONFIGS:
        config = run_by_id(run_id)
        labeled = generate_session(
            (config,), duration=120, calibration_duration=150, seed=0
        )[0]
        print(
            f"  run #{run_id:<2} {description:<32} "
            f"saturated {labeled.saturated_fraction:5.0%}  "
            f"bottleneck: {labeled.observed_bottleneck}"
        )

    print("\nTraining a model on these runs and asking what it looks at...")
    corpus = build_training_corpus(
        duration=150,
        calibration_duration=150,
        seed=0,
        runs=[run_by_id(i) for i, _ in CONFIGS] + [run_by_id(7), run_by_id(9)],
    )
    model = MonitorlessModel(classifier_params={"n_estimators": 40})
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)

    top = model.feature_importances(top=20)
    print("\nTop-20 features (Table 4 flavor):")
    for name, weight in top:
        print(f"  {weight:.4f}  {name}")

    domains = Counter()
    for name, _ in top:
        for token, domain in [
            ("CPU", "cpu"), ("network", "network"), ("tcp", "network"),
            ("mem", "memory"), ("MEM", "memory"), ("disk", "disk"),
            ("blkio", "disk"),
        ]:
            if token in name:
                domains[domain] += 1
                break
    print(f"\nresource domains among the top features: {dict(domains)}")
    print(
        "\nInteraction features crossing CPU levels with network/memory/disk "
        "metrics dominate -- the model watches several resources at once, "
        "as a performance engineer would (paper section 3.5)."
    )


if __name__ == "__main__":
    main()
