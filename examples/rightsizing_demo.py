"""Rightsizing demo: scale-out *and* conservative scale-in
(paper section 5, "Using monitorless for autoscaling").

Trains the saturation classifier together with a second classifier
that detects *overprovisioned* instances, then replays a load profile
that rises and falls, printing the recommended replica count over
time.

    python examples/rightsizing_demo.py
"""

import numpy as np

from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.apps.solr import solr_application
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.orchestrator.rightsizing import (
    RightsizingModel,
    Rightsizer,
    label_overprovisioning,
)
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.patterns import step_levels


def train_rightsizing_model() -> RightsizingModel:
    print("Training saturation + overprovisioning classifiers...")
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 25)]
    corpus = build_training_corpus(
        duration=150, calibration_duration=150, seed=0, runs=runs
    )
    # Over-provisioning ground truth: the KPI relative to the saturation
    # threshold is the utilization of the run's bottleneck resource --
    # data every calibration campaign records anyway.
    utilizations = []
    for run in corpus.runs:
        per_tick = np.minimum(run.throughput / max(run.threshold, 1e-9), 1.5)
        utilizations.append(np.tile(per_tick, run.y.size // per_tick.size))
    utilization = np.concatenate(utilizations)
    y_over = label_overprovisioning(utilization, low_water_mark=0.3)
    y_over[corpus.y == 1] = 0  # saturation dominates

    model = RightsizingModel(
        saturation_model=MonitorlessModel(classifier_params={"n_estimators": 30}),
        overprovisioning_model=MonitorlessModel(
            prediction_threshold=0.7, classifier_params={"n_estimators": 30}
        ),
    )
    model.fit(corpus.X, corpus.meta, corpus.y, y_over, corpus.groups)
    return model


def main() -> None:
    model = train_rightsizing_model()
    agent = TelemetryAgent(seed=0)
    meta = agent.catalog.feature_meta()

    # A rise-and-fall profile against a 3-core Solr service (~50 req/s
    # per replica).
    profile = step_levels([60, 60, 60, 60], [10.0, 80.0, 80.0, 10.0])
    simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
    simulation.deploy(
        solr_application(),
        {"solr": [Placement(node="training", cpu_limit=3.0)]},
    )
    sizer = Rightsizer(consecutive_ticks=30, min_replicas=1)

    print("\n t    load   replicas -> recommendation")
    for t, rate in enumerate(profile):
        simulation.step({"solr": float(rate)})
        deployment = simulation.deployments["solr"]
        verdict_list = []
        for instance in deployment.instances["solr"]:
            container = instance.container
            end = container.created_at + len(container.history)
            start = max(container.created_at, end - 16)
            window = agent.instance_matrix(
                container, simulation.nodes, start=start, end=end
            )
            verdicts = model.verdicts(window, meta)
            verdict_list.append(str(verdicts[-1]))
        current = len(deployment.instances["solr"])
        recommendation = sizer.recommend("solr", verdict_list, current)
        if recommendation.action == "scale_out" and current < 4:
            simulation.add_replica(
                "solr", "solr", Placement(node="training", cpu_limit=3.0)
            )
        elif recommendation.action == "scale_in":
            simulation.remove_replica("solr", "solr")
        if t % 20 == 0 or recommendation.action != "hold":
            print(
                f"{t:4d}  {rate:6.0f}   {current} -> "
                f"{recommendation.recommended_replicas} "
                f"({recommendation.action}; verdicts {verdict_list})"
            )

    print("\nReplicas follow the load up and -- conservatively -- back down.")


if __name__ == "__main__":
    main()
