"""Threshold discovery with Kneedle (paper section 2.2 / Figure 2).

Ramps a simulated Solr service linearly, observes the throughput KPI,
smooths it with a Savitzky-Golay filter, and locates the saturation
knee -- printing an ASCII rendition of Figure 2.

    python examples/threshold_discovery.py
"""

import numpy as np

from repro.apps.solr import solr_application
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.labeling import KneedleLabeler
from repro.workloads.patterns import linear_ramp


def ascii_plot(x, series, width=72, height=16, markers="*o+") -> str:
    """Plot multiple aligned series as ASCII art."""
    lines = [[" "] * width for _ in range(height)]
    low = min(float(np.min(s)) for s in series)
    high = max(float(np.max(s)) for s in series)
    span = (high - low) or 1.0
    for marker, values in zip(markers, series):
        for i in range(width):
            index = int(i / width * (len(values) - 1))
            row = int((float(values[index]) - low) / span * (height - 1))
            lines[height - 1 - row][i] = marker
    return "\n".join("".join(line) for line in lines)


def main() -> None:
    duration = 500
    simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
    simulation.deploy(solr_application(), {"solr": [Placement(node="training")]})
    load = linear_ramp(duration, 1.0, 1300.0)
    result = simulation.run({"solr": load})

    rng = np.random.default_rng(0)
    observed = result.kpi("solr", "throughput") * (
        1.0 + rng.normal(0.0, 0.02, duration)
    )

    labeler = KneedleLabeler(window_length=21).fit(load, observed)
    knee = labeler.knee_

    print("Observed (*) and smoothed (o) throughput vs load, "
          "difference curve (+):\n")
    difference_scaled = knee.difference * float(np.max(observed))
    print(ascii_plot(load, [observed, knee.smoothed, difference_scaled]))
    print(
        f"\nknee at load ~{knee.knee_x:.0f} req/s, KPI value {knee.knee_y:.1f}"
        f" -> saturation threshold Upsilon = {labeler.threshold_:.1f}"
    )

    labels = labeler.label(observed)
    print(
        f"labeling the ramp against Upsilon: {labels.mean():.0%} of samples "
        "saturated"
    )


if __name__ == "__main__":
    main()
