"""Model interpretability demo (paper section 5, "Interpretability").

Distills a trained monitorless model into depth-restricted scaling
rules a developer can read, and produces a LIME-style local
explanation for one saturated sample.

    python examples/explain_model.py
"""

import numpy as np

from repro.core.interpret import LimeExplainer, SurrogateTree
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus


def main() -> None:
    print("Training monitorless on 6 Table-1 runs...")
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=150, calibration_duration=150, seed=0, runs=runs
    )
    model = MonitorlessModel(classifier_params={"n_estimators": 40})
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)

    # Work in the engineered feature space, where the model decides.
    features = model.transform(corpus.X, corpus.meta, corpus.groups)
    names = model.pipeline_.feature_names_
    predictions = model.classifier_.predict(features)

    print("\n--- Global view: depth-3 surrogate tree ---------------------")
    surrogate = SurrogateTree(max_depth=3, min_samples_leaf=30)
    surrogate.fit(features, predictions, names)
    print(f"fidelity to the forest: {surrogate.fidelity(features, predictions):.1%}\n")
    for rule in surrogate.rules()[:6]:
        print(f"  {rule}")

    print("\n--- Local view: LIME on one saturated sample ----------------")
    saturated_index = int(np.flatnonzero(predictions == 1)[0])
    explainer = LimeExplainer(
        features, names, n_samples=400, random_state=0
    )
    explanation = explainer.explain(
        features[saturated_index],
        lambda X: model.classifier_.predict_proba(X)[:, 1],
    )
    print(
        f"model saturation probability: {explanation.model_prediction:.2f}\n"
        "locally most influential features:"
    )
    for name, weight in explanation.top(6):
        direction = "pushes toward saturated" if weight > 0 else "pushes away"
        print(f"  {weight:+.4f}  {name}  ({direction})")


if __name__ == "__main__":
    main()
