"""Quickstart: train monitorless on benchmark services, detect
saturation of an application it has never seen.

Runs in a couple of minutes on a laptop:

    python examples/quickstart.py

Steps:

1. generate labeled training data from a handful of Table-1 runs
   (simulated Solr / Memcache / Cassandra under varying load and
   cgroup limits);
2. train the monitorless model (feature pipeline + random forest);
3. simulate the *unseen* Elgg three-tier web application;
4. predict per-container saturation from platform metrics only and
   compare with the KPI-derived ground truth.
"""

from repro.core.aggregation import aggregate_or
from repro.core.evaluation import lagged_confusion
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.experiments import elgg_scenario
from repro.datasets.generate import build_training_corpus


def main() -> None:
    print("1/4  Generating training data (6 Table-1 runs)...")
    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    corpus = build_training_corpus(
        duration=200, calibration_duration=200, seed=0, runs=runs
    )
    print(
        f"     {corpus.X.shape[0]} samples x {corpus.X.shape[1]} platform "
        f"metrics, {corpus.saturated_fraction:.0%} saturated"
    )

    print("2/4  Training the monitorless model...")
    model = MonitorlessModel(classifier_params={"n_estimators": 40})
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    print(f"     engineered features: {model.n_engineered_features_}")

    print("3/4  Simulating the unseen Elgg three-tier application...")
    scenario = elgg_scenario(duration=600, seed=0)
    print(
        f"     {len(scenario.containers())} containers, ground-truth "
        f"saturation ratio {scenario.y_true.mean():.0%}"
    )

    print("4/4  Predicting saturation from platform metrics only...")
    per_instance = scenario.instance_predictions(model)
    application_prediction = aggregate_or(per_instance)
    confusion = lagged_confusion(scenario.y_true, application_prediction, k=2)
    print(
        f"\n     F1_2 = {confusion.f1:.3f}   Acc_2 = {confusion.accuracy:.3f}"
        f"   (TP={confusion.tp} TN={confusion.tn} "
        f"FP={confusion.fp} FN={confusion.fn})"
    )
    print("\nTop engineered features driving the model:")
    for name, weight in model.feature_importances(top=8):
        print(f"     {weight:.4f}  {name}")


if __name__ == "__main__":
    main()
