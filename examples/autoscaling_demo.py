"""Closed-loop autoscaling demo (paper section 4.2.2 / Table 7).

Deploys the 7-service TeaStore on the simulated M1/M2/M3 trio, plays
a bursty workload trace, and compares three scaling policies:

- **no scaling** -- the static baseline;
- **monitorless** -- the trained model watching live platform metrics;
- **RT-based** -- the a-posteriori "optimal" scaler watching the
  application's own response-time KPI (which monitorless avoids
  needing).

    python examples/autoscaling_demo.py
"""

from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.model import MonitorlessModel
from repro.datasets.configs import run_by_id
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.datasets.generate import build_training_corpus
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import (
    MonitorlessPolicy,
    NoScalingPolicy,
    ResponseTimePolicy,
)
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.traces import teastore_trace

GIB = 2**30
TRACE_SECONDS = 1200


def train_model() -> MonitorlessModel:
    print("Training monitorless on 8 Table-1 runs...")
    runs = [run_by_id(i) for i in (1, 2, 7, 8, 9, 12, 21, 24)]
    corpus = build_training_corpus(
        duration=200, calibration_duration=200, seed=0, runs=runs
    )
    model = MonitorlessModel(classifier_params={"n_estimators": 40})
    model.fit(corpus.X, corpus.meta, corpus.y, corpus.groups)
    return model


def run_policy(name: str, policy, scale: bool):
    simulation = ClusterSimulation(evaluation_nodes(), seed=0)
    simulation.deploy(teastore_application(), teastore_placements())
    rules = (
        ScalingRules(
            placements={
                "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * GIB),
                "recommender": Placement(node="M2", cpu_limit=1.0,
                                         memory_limit=4 * GIB),
                "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * GIB),
            },
            replica_lifespan=120,
            scale_groups=(("auth", "recommender"),),
        )
        if scale
        else None
    )
    orchestrator = Orchestrator(simulation, "teastore", policy, rules)
    trace = teastore_trace(duration=TRACE_SECONDS, seed=7)
    result = orchestrator.run({"teastore": trace})
    print(
        f"  {name:<24} provisioning +{100 * result.average_provisioning:.0f}%  "
        f"SLO violations {result.slo_violation_count:>4}  "
        f"scale-outs {result.total_scale_outs}"
    )
    return result


def main() -> None:
    model = train_model()
    agent = TelemetryAgent(seed=0)
    print(f"\nReplaying a {TRACE_SECONDS}s bursty trace under three policies:")
    run_policy("no scaling", NoScalingPolicy(), scale=False)
    run_policy(
        "monitorless", MonitorlessPolicy(model, agent, window=16), scale=True
    )
    run_policy(
        "RT-based (optimal)",
        ResponseTimePolicy(["recommender", "auth"], rt_threshold=0.5),
        scale=True,
    )
    print(
        "\nMonitorless approaches the RT-based scaler without ever reading "
        "the application's KPIs."
    )


if __name__ == "__main__":
    main()
