"""Iterative training-set improvement (paper section 3.2.3).

The paper's recipe for hardening the training set:

1. fit a MinMaxScaler on the training data and keep it;
2. scale a validation set with the *trained* scaler -- features whose
   validation range falls outside the trained range were not covered
   by the training campaign;
3. decide whether those features matter, design additional runs that
   exercise them, and repeat.

This example trains on CPU-bound runs only, validates against a
memory-constrained Memcache run, finds the uncovered (paging-related)
features, adds an IO-bound run to the campaign and shows the coverage
gap shrink.

    python examples/training_set_iteration.py
"""

from repro.datasets.configs import run_by_id
from repro.datasets.generate import build_training_corpus
from repro.ml.preprocessing import MinMaxScaler


def coverage_report(train_corpus, valid_corpus, label: str) -> int:
    scaler = MinMaxScaler().fit(train_corpus.X)
    gaps = scaler.coverage_gaps(valid_corpus.X, tolerance=1e-9)
    names = [valid_corpus.meta[i].name for i in gaps]
    interesting = [
        n for n in names
        if any(tok in n for tok in ("pgpg", "swap", "page", "blkio", "aveq",
                                    "S-MEM", "memory"))
    ]
    print(f"\n{label}")
    print(f"  features outside the trained range: {len(gaps)} / "
          f"{train_corpus.X.shape[1]}")
    print(f"  paging/memory-related among them: {len(interesting)}")
    for name in interesting[:8]:
        print(f"    - {name}")
    return len(gaps)


def main() -> None:
    print("Validation target: memory-limited Memcache (run 9, IO-Queue).")
    validation = build_training_corpus(
        duration=120, calibration_duration=150, seed=1, runs=[run_by_id(9)]
    )

    print("\nCampaign 1: CPU-bound runs only (runs 1, 2, 12)...")
    campaign1 = build_training_corpus(
        duration=120, calibration_duration=150, seed=0,
        runs=[run_by_id(i) for i in (1, 2, 12)],
    )
    gaps1 = coverage_report(campaign1, validation, "Coverage after campaign 1:")

    print("\nCampaign 2: adding IO/memory-bound runs (7, 10, 15, 24)...")
    campaign2 = build_training_corpus(
        duration=120, calibration_duration=150, seed=0,
        runs=[run_by_id(i) for i in (1, 2, 12, 7, 10, 15, 24)],
    )
    gaps2 = coverage_report(campaign2, validation, "Coverage after campaign 2:")

    print(
        f"\nUncovered features: {gaps1} -> {gaps2}. "
        "Designing runs that stress the missing resources closes the gap "
        "(step 4 of the paper's loop)."
    )


if __name__ == "__main__":
    main()
