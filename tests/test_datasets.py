"""Tests for the Table-1 configurations and corpus generation."""

import numpy as np
import pytest

from repro.cluster.resources import GIB
from repro.datasets.configs import TABLE1_RUNS, run_by_id, sessions
from repro.datasets.generate import calibrate_threshold, generate_session

# Mapping from Table-1 bottleneck labels to simulator resource names.
BOTTLENECK_RESOURCE = {
    "Container-CPU": "cpu",
    "Host-CPU": "cpu",
    "IO-Bandwidth": "disk_bandwidth",
    "IO-Queue": "disk_queue",
    "IO-Wait": "disk_queue",
    "Mem-Bandwidth": "memory_bandwidth",
    "Network-Util": "network",
}


class TestTable1Inventory:
    def test_twenty_five_runs(self):
        assert len(TABLE1_RUNS) == 25
        assert [run.run_id for run in TABLE1_RUNS] == list(range(1, 26))

    def test_service_counts_match_paper(self):
        services = [run.service for run in TABLE1_RUNS]
        assert services.count("solr") == 6
        assert services.count("memcache") == 4
        assert services.count("cassandra") == 15

    def test_parallel_pairs_match_paper(self):
        pairs = {
            run.run_id: run.parallel_with
            for run in TABLE1_RUNS
            if run.parallel_with is not None
        }
        assert pairs == {3: 18, 4: 19, 5: 20, 6: 22, 10: 23,
                         18: 3, 19: 4, 20: 5, 22: 6, 23: 10}

    def test_limits_of_selected_runs(self):
        assert run_by_id(1).cpu_limit == 3.0 and run_by_id(1).mem_limit is None
        assert run_by_id(14).cpu_limit == 20.0
        assert run_by_id(14).mem_limit == 30 * GIB
        assert run_by_id(24).cpu_limit == 1.0

    def test_bottleneck_labels_known(self):
        for run in TABLE1_RUNS:
            assert run.bottleneck in BOTTLENECK_RESOURCE, run.bottleneck

    def test_workload_patterns(self):
        assert run_by_id(1).pattern == "sin"
        assert run_by_id(3).pattern == "sinnoise"
        assert run_by_id(23).pattern == "constant"
        series = run_by_id(12).workload(120, seed=0)
        assert series.shape == (120,)
        assert series.min() >= run_by_id(12).rate_low * 0.99

    def test_application_factories(self):
        assert run_by_id(2).application().name == "solr"
        cassandra = run_by_id(24).application()
        assert cassandra.services["cassandra"].serial_io_seconds > 0

    def test_sessions_pair_parallel_runs(self):
        grouped = sessions()
        sizes = sorted(len(group) for group in grouped)
        assert sizes.count(2) == 5  # five interference pairs
        by_first = {group[0].run_id: group for group in grouped if len(group) == 2}
        assert {run.run_id for run in by_first[3]} == {3, 18}

    def test_sessions_cover_every_run_once(self):
        ids = [run.run_id for group in sessions() for run in group]
        assert sorted(ids) == list(range(1, 26))


class TestCalibration:
    def test_solr_threshold_near_capacity(self):
        threshold, ramp, observed = calibrate_threshold(
            run_by_id(2), duration=200, seed=0
        )
        # Unlimited Solr capacity is ~800 req/s.
        assert 700.0 < threshold < 810.0

    def test_quota_shrinks_threshold(self):
        limited, _, _ = calibrate_threshold(run_by_id(1), duration=150, seed=0)
        unlimited, _, _ = calibrate_threshold(run_by_id(2), duration=150, seed=0)
        assert limited < unlimited / 5

    def test_constant_low_rate_run_calibrates_past_range(self):
        """Run 25 (Cassandra F at 20 req/s) saturates near 200 req/s;
        the adaptive ramp must extend past the configured range."""
        threshold, _, _ = calibrate_threshold(run_by_id(25), duration=150, seed=0)
        assert threshold > 100.0


class TestGeneratedSessions:
    @pytest.mark.parametrize("run_id", [1, 7, 9, 11, 14, 24])
    def test_observed_bottleneck_matches_table1(self, run_id):
        config = run_by_id(run_id)
        labeled = generate_session(
            (config,), duration=100, calibration_duration=120, seed=0
        )
        run = labeled[0]
        assert run.observed_bottleneck == BOTTLENECK_RESOURCE[config.bottleneck]

    def test_labels_binary_and_plausible(self):
        labeled = generate_session(
            (run_by_id(12),), duration=100, calibration_duration=120, seed=0
        )[0]
        assert set(np.unique(labeled.y)) <= {0, 1}
        assert 0.05 < labeled.saturated_fraction < 0.95

    def test_interference_session_produces_both_runs(self):
        pair = (run_by_id(10), run_by_id(23))
        labeled = generate_session(
            pair, duration=80, calibration_duration=100, seed=0
        )
        assert {run.config.run_id for run in labeled} == {10, 23}
        for run in labeled:
            assert run.X.shape[0] == run.y.shape[0] == 80

    def test_corpus_fixture_shape(self, tiny_corpus):
        assert tiny_corpus.X.shape[1] == 1040
        assert tiny_corpus.X.shape[0] == tiny_corpus.y.shape[0]
        assert tiny_corpus.groups.shape == tiny_corpus.y.shape
        assert len(tiny_corpus.meta) == 1040
        assert 0.1 < tiny_corpus.saturated_fraction < 0.9

    def test_corpus_groups_are_run_ids(self, tiny_corpus):
        assert set(np.unique(tiny_corpus.groups)) == {1, 2, 7, 9, 12, 24}

    def test_summary_structure(self, tiny_corpus):
        summary = tiny_corpus.summary()
        assert len(summary) == 6
        assert {"run", "service", "saturated", "observed_bottleneck"} <= set(
            summary[0]
        )
