"""Property-based and invariant tests for the simulation engine and
the ML substrate's structural guarantees."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.solr import solr_application
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.ml.tree import DecisionTreeClassifier
from repro.workloads.patterns import constant


def run_solr(rates, cpu_limit=None, seed=0):
    simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=seed)
    simulation.deploy(
        solr_application(),
        {"solr": [Placement(node="training", cpu_limit=cpu_limit)]},
    )
    for rate in rates:
        simulation.step({"solr": float(rate)})
    return simulation.result()


class TestEngineInvariants:
    @given(
        st.lists(st.floats(1.0, 3000.0, allow_nan=False), min_size=3, max_size=25)
    )
    @settings(max_examples=25, deadline=None)
    def test_throughput_never_exceeds_offered_cumulative(self, rates):
        """Work conservation: total completions never exceed arrivals."""
        result = run_solr(rates)
        completed = result.kpi("solr", "throughput").sum()
        offered = result.kpi("solr", "offered").sum()
        assert completed <= offered + 1e-6 * (1 + offered)

    @given(
        st.lists(st.floats(1.0, 3000.0, allow_nan=False), min_size=3, max_size=25)
    )
    @settings(max_examples=25, deadline=None)
    def test_kpis_finite_and_nonnegative(self, rates):
        result = run_solr(rates)
        for name in ("throughput", "response_time", "dropped"):
            series = result.kpi("solr", name)
            assert np.all(np.isfinite(series))
            assert np.all(series >= 0.0)

    @given(st.floats(50.0, 2000.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_larger_quota_never_reduces_throughput(self, rate):
        small = run_solr([rate] * 10, cpu_limit=2.0)
        large = run_solr([rate] * 10, cpu_limit=8.0)
        assert (
            large.kpi("solr", "throughput")[-1]
            >= small.kpi("solr", "throughput")[-1] - 1e-6
        )

    @given(st.floats(1.0, 700.0, allow_nan=False))
    @settings(max_examples=20, deadline=None)
    def test_light_load_served_in_full(self, rate):
        """Below the 800 req/s knee the service keeps up exactly."""
        result = run_solr([rate] * 12)
        assert result.kpi("solr", "throughput")[-1] == pytest.approx(
            rate, rel=0.05
        )

    def test_response_time_monotone_in_load_on_average(self):
        rates = [100.0, 400.0, 780.0, 1200.0]
        values = []
        for rate in rates:
            result = run_solr([rate] * 15)
            values.append(result.kpi("solr", "response_time")[-1])
        assert values == sorted(values)

    def test_container_history_length_matches_clock(self):
        result = run_solr(constant(17, 100.0))
        assert all(len(c.history) == 17 for c in result.containers)


class TestTreeStructuralGuarantees:
    @given(
        st.integers(1, 6),
        st.integers(10, 200),
    )
    @settings(max_examples=20, deadline=None)
    def test_probabilities_are_distributions(self, depth, n):
        rng = np.random.default_rng(depth * 1000 + n)
        X = rng.normal(size=(n, 4))
        y = (X[:, 0] > 0).astype(int)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        tree = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0.0)

    @given(st.integers(1, 8))
    @settings(max_examples=10, deadline=None)
    def test_depth_bound_always_respected(self, depth):
        rng = np.random.default_rng(depth)
        X = rng.normal(size=(300, 6))
        y = (X @ rng.normal(size=6) > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=depth, random_state=0).fit(X, y)
        assert tree.depth_ <= depth

    def test_prediction_invariant_under_row_order(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(100, 3))
        y = (X[:, 1] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(X, y)
        order = rng.permutation(50)
        X_test = rng.normal(size=(50, 3))
        assert np.array_equal(
            tree.predict(X_test)[order], tree.predict(X_test[order])
        )
