"""Tests for workload generators and application models."""

import numpy as np
import pytest

from repro.apps import (
    cassandra_application,
    elgg_application,
    memcache_application,
    sockshop_application,
    solr_application,
    teastore_application,
)
from repro.apps.base import ServiceSpec
from repro.apps.sockshop import SOCKSHOP_SERVICES
from repro.apps.teastore import TEASTORE_SERVICES
from repro.workloads.limbo import Burst, LimboProfile
from repro.workloads.locust import locust_ramp, staggered_locust_runs
from repro.workloads.patterns import (
    constant,
    linear_ramp,
    sine,
    sinnoise,
    step_levels,
)
from repro.workloads.traces import teastore_trace
from repro.workloads.ycsb import YCSB_MIXES, YcsbMix, YcsbWorkload


class TestPatterns:
    def test_constant(self):
        series = constant(10, 42.0)
        assert series.shape == (10,) and np.all(series == 42.0)

    def test_linear_ramp_endpoints(self):
        series = linear_ramp(100, 10.0, 200.0)
        assert series[0] == 10.0 and series[-1] == 200.0

    def test_sine_range(self):
        series = sine(500, 1.0, 1000.0)
        assert series.min() >= 1.0
        assert 990.0 <= series.max() <= 1000.0

    def test_sinnoise_noisier_than_sine(self):
        base = sine(400, 1, 1000)
        noisy = sinnoise(400, 1, 1000, seed=0)
        assert np.std(noisy - base) > 10.0

    def test_sinnoise_deterministic(self):
        assert np.array_equal(sinnoise(100, seed=4), sinnoise(100, seed=4))

    def test_step_levels(self):
        series = step_levels([3, 2], [10.0, 20.0])
        assert series.tolist() == [10.0, 10.0, 10.0, 20.0, 20.0]

    def test_floor_at_one(self):
        assert sine(100, -50.0, 10.0).min() >= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            constant(0, 5.0)
        with pytest.raises(ValueError):
            sine(10, 5.0, 5.0)


class TestLimbo:
    def test_components_compose(self):
        profile = LimboProfile(
            duration=600,
            base=100.0,
            seasonal_amplitude=50.0,
            trend_per_second=0.1,
            bursts=[Burst(at=300, width=20, height=200.0)],
            noise_std=5.0,
            seed=0,
        )
        series = profile.generate()
        assert series.shape == (600,)
        assert series[300] > 200.0  # the burst peak
        assert series[500:].mean() > series[:100].mean()  # the trend

    def test_burst_shape_triangular(self):
        burst = Burst(at=50, width=10, height=100.0).series(100)
        assert burst[50] == 100.0
        assert burst[40] == 0.0 and burst[60] == 0.0
        assert burst[45] == 50.0


class TestYcsb:
    def test_paper_mixes_present(self):
        assert set(YCSB_MIXES) == {"A", "B", "D", "F"}
        assert YCSB_MIXES["A"].read_fraction == 0.5
        assert YCSB_MIXES["B"].read_fraction == 0.95
        assert YCSB_MIXES["D"].read_latest
        assert YCSB_MIXES["F"].read_modify_write

    def test_mix_fractions_validated(self):
        with pytest.raises(ValueError, match="sum to 1"):
            YcsbMix(name="X", read_fraction=0.9, write_fraction=0.5)

    def test_rmw_costs_most(self):
        assert (
            YCSB_MIXES["F"].work_multiplier
            > YCSB_MIXES["A"].work_multiplier
            > YCSB_MIXES["B"].work_multiplier
        )

    def test_sweep_covers_range(self):
        workload = YcsbWorkload(YCSB_MIXES["B"], duration=600, rate_range=(100, 900))
        series = workload.generate()
        assert series.shape == (600,)
        assert series.min() >= 99.0 and series.max() <= 901.0
        assert len(np.unique(series)) >= 4  # several plateaus

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            YcsbWorkload(YCSB_MIXES["B"], 100, (0, 10)).generate()


class TestLocust:
    def test_ramp_then_hold(self):
        series = locust_ramp(duration=1000, max_clients=700, hatch_seconds=700)
        assert series[0] <= 2.0
        assert np.isclose(series[699], 700.0, rtol=0.01)
        assert np.allclose(series[700:], 700.0)

    def test_staggered_runs_do_not_overlap_by_default(self):
        series = staggered_locust_runs(total_duration=7000)
        assert series.max() <= 701.0
        # Quiet stretch between runs.
        assert series[2500] <= 1.0

    def test_invalid_start(self):
        with pytest.raises(ValueError):
            staggered_locust_runs(total_duration=100, starts=(200,))


class TestTeastoreTrace:
    def test_shape_and_positivity(self):
        trace = teastore_trace(duration=3600, seed=0)
        assert trace.shape == (3600,)
        assert trace.min() >= 1.0

    def test_bursty(self):
        trace = teastore_trace(duration=3600, seed=0)
        assert trace.max() > 2.0 * np.median(trace)

    def test_deterministic(self):
        assert np.array_equal(
            teastore_trace(duration=1200, seed=3), teastore_trace(duration=1200, seed=3)
        )

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            teastore_trace(duration=100)


class TestServiceSpec:
    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            ServiceSpec(name="bad", cpu_seconds=-1.0)

    def test_zero_visits_rejected(self):
        with pytest.raises(ValueError, match="visits"):
            ServiceSpec(name="bad", cpu_seconds=0.1, visits=0.0)

    def test_scaled_copies(self):
        spec = ServiceSpec(name="s", cpu_seconds=0.1)
        scaled = spec.scaled(0.5)
        assert scaled.cpu_seconds == 0.05
        assert spec.cpu_seconds == 0.1


class TestApplications:
    def test_training_apps_single_service(self):
        assert solr_application().service_names() == ["solr"]
        assert memcache_application().service_names() == ["memcache"]
        assert cassandra_application("A").service_names() == ["cassandra"]

    def test_elgg_three_tiers(self):
        services = elgg_application().service_names()
        assert services == ["elgg-web", "innodb", "memcache"]

    def test_teastore_seven_services(self):
        app = teastore_application()
        assert tuple(app.service_names()) == TEASTORE_SERVICES
        assert len(app.services) == 7

    def test_sockshop_fourteen_services(self):
        app = sockshop_application()
        assert tuple(app.service_names()) == SOCKSHOP_SERVICES
        assert len(app.services) == 14

    def test_cassandra_mix_changes_profile(self):
        read_heavy = cassandra_application("B").services["cassandra"]
        update_heavy = cassandra_application("A").services["cassandra"]
        assert update_heavy.net_out_bytes > read_heavy.net_out_bytes

    def test_cassandra_io_heavy_adds_disk(self):
        light = cassandra_application("B").services["cassandra"]
        heavy = cassandra_application("B", io_heavy=True).services["cassandra"]
        assert heavy.disk_read_bytes > light.disk_read_bytes

    def test_cassandra_fsync_bound_serial_io(self):
        fsync = cassandra_application("F", fsync_bound=True).services["cassandra"]
        assert fsync.serial_io_seconds == pytest.approx(0.005)

    def test_duplicate_service_rejected(self):
        app = solr_application()
        with pytest.raises(ValueError, match="Duplicate"):
            app.add_service(app.services["solr"])

    def test_end_to_end_requires_all_services(self):
        app = elgg_application()
        with pytest.raises(ValueError, match="No instances"):
            app.end_to_end({"elgg-web": []})
