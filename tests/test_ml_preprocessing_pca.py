"""Tests for the scalers and PCA."""

import numpy as np
import pytest

from repro.ml.decomposition import PCA
from repro.ml.preprocessing import MinMaxScaler, StandardScaler


class TestMinMaxScaler:
    def test_transforms_to_unit_range(self, rng):
        X = rng.normal(10.0, 5.0, size=(100, 4))
        scaled = MinMaxScaler().fit_transform(X)
        assert np.allclose(scaled.min(axis=0), 0.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_custom_range(self, rng):
        X = rng.normal(size=(50, 2))
        scaled = MinMaxScaler(feature_range=(-1.0, 1.0)).fit_transform(X)
        assert np.allclose(scaled.min(axis=0), -1.0)
        assert np.allclose(scaled.max(axis=0), 1.0)

    def test_constant_feature_no_division_by_zero(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        scaled = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))

    def test_inverse_transform_roundtrip(self, rng):
        X = rng.normal(size=(30, 3))
        scaler = MinMaxScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_invalid_range(self):
        with pytest.raises(ValueError, match="feature_range"):
            MinMaxScaler(feature_range=(1.0, 1.0))

    def test_coverage_gaps_detects_undertrained_features(self, rng):
        """The section-3.2.3 training-set-improvement check."""
        X_train = rng.uniform(0, 1, size=(100, 3))
        X_valid = X_train.copy()
        X_valid[:, 1] = rng.uniform(2, 3, size=100)  # outside training range
        scaler = MinMaxScaler().fit(X_train)
        gaps = scaler.coverage_gaps(X_valid)
        assert list(gaps) == [1]

    def test_coverage_gaps_empty_when_covered(self, rng):
        X = rng.uniform(0, 1, size=(100, 3))
        scaler = MinMaxScaler().fit(X)
        assert scaler.coverage_gaps(X * 0.5 + 0.25).size == 0

    def test_feature_count_mismatch(self, rng):
        scaler = MinMaxScaler().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ValueError, match="features"):
            scaler.transform(rng.normal(size=(10, 4)))


class TestStandardScaler:
    def test_zero_mean_unit_variance(self, rng):
        X = rng.normal(5.0, 3.0, size=(200, 4))
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_feature_passes_through(self):
        X = np.full((20, 1), 7.0)
        scaled = StandardScaler().fit_transform(X)
        assert np.allclose(scaled, 0.0)

    def test_inverse_roundtrip(self, rng):
        X = rng.normal(size=(40, 5))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_without_mean_or_std(self, rng):
        X = rng.normal(3.0, 2.0, size=(50, 2))
        no_mean = StandardScaler(with_mean=False).fit_transform(X)
        assert not np.allclose(no_mean.mean(axis=0), 0.0, atol=0.1)
        no_std = StandardScaler(with_std=False).fit_transform(X)
        assert np.allclose(no_std.mean(axis=0), 0.0, atol=1e-10)


class TestPCA:
    def test_reconstruction_with_all_components(self, rng):
        X = rng.normal(size=(60, 5))
        pca = PCA().fit(X)
        reconstructed = pca.inverse_transform(pca.transform(X))
        assert np.allclose(reconstructed, X, atol=1e-8)

    def test_variance_fraction_selection(self, rng):
        # Data with 2 dominant directions out of 10.
        latent = rng.normal(size=(300, 2)) * np.array([10.0, 5.0])
        mixing = rng.normal(size=(2, 10))
        X = latent @ mixing + 0.01 * rng.normal(size=(300, 10))
        pca = PCA(n_components=0.99).fit(X)
        assert pca.n_components_ == 2

    def test_explained_variance_ratio_sorted_and_bounded(self, rng):
        X = rng.normal(size=(80, 6))
        pca = PCA().fit(X)
        ratio = pca.explained_variance_ratio_
        assert np.all(np.diff(ratio) <= 1e-12)
        assert 0.999 <= ratio.sum() <= 1.001

    def test_components_are_orthonormal(self, rng):
        X = rng.normal(size=(100, 5))
        pca = PCA(n_components=3).fit(X)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-8)

    def test_int_components_capped_by_rank(self, rng):
        X = rng.normal(size=(10, 4))
        pca = PCA(n_components=99).fit(X)
        assert pca.n_components_ <= 4

    def test_invalid_fraction(self, rng):
        with pytest.raises(ValueError, match="n_components"):
            PCA(n_components=1.5).fit(rng.normal(size=(10, 3)))

    def test_transform_feature_mismatch(self, rng):
        pca = PCA(n_components=2).fit(rng.normal(size=(20, 4)))
        with pytest.raises(ValueError, match="features"):
            pca.transform(rng.normal(size=(5, 3)))
