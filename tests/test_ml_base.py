"""Tests for the estimator plumbing in repro.ml.base."""

import numpy as np
import pytest

from repro.ml.base import (
    BaseEstimator,
    NotFittedError,
    check_array,
    check_is_fitted,
    check_random_state,
    check_X_y,
    clone,
    compute_sample_weight,
)


class _Toy(BaseEstimator):
    def __init__(self, alpha=1.0, beta="x"):
        self.alpha = alpha
        self.beta = beta


class TestParams:
    def test_get_params_returns_constructor_args(self):
        assert _Toy(alpha=2.0).get_params() == {"alpha": 2.0, "beta": "x"}

    def test_set_params_roundtrip(self):
        toy = _Toy().set_params(alpha=5.0, beta="y")
        assert toy.alpha == 5.0 and toy.beta == "y"

    def test_set_params_rejects_unknown(self):
        with pytest.raises(ValueError, match="Invalid parameter"):
            _Toy().set_params(gamma=1)

    def test_clone_copies_params_not_state(self):
        toy = _Toy(alpha=3.0)
        toy.fitted_ = True
        copy = clone(toy)
        assert copy.alpha == 3.0
        assert not hasattr(copy, "fitted_")

    def test_repr_contains_params(self):
        assert "alpha=3.0" in repr(_Toy(alpha=3.0))


class TestValidation:
    def test_check_array_rejects_1d(self):
        with pytest.raises(ValueError, match="2D"):
            check_array(np.zeros(5))

    def test_check_array_rejects_nan(self):
        X = np.zeros((3, 2))
        X[1, 1] = np.nan
        with pytest.raises(ValueError, match="NaN"):
            check_array(X)

    def test_check_array_rejects_inf(self):
        X = np.zeros((3, 2))
        X[0, 0] = np.inf
        with pytest.raises(ValueError):
            check_array(X)

    def test_check_X_y_length_mismatch(self):
        with pytest.raises(ValueError, match="samples"):
            check_X_y(np.zeros((4, 2)), np.zeros(3))

    def test_check_X_y_flattens_y(self):
        _, y = check_X_y(np.zeros((4, 2)), np.zeros((4, 1)))
        assert y.ndim == 1

    def test_check_X_y_empty(self):
        with pytest.raises(ValueError, match="0 samples"):
            check_X_y(np.zeros((0, 2)), np.zeros(0))

    def test_check_is_fitted(self):
        toy = _Toy()
        with pytest.raises(NotFittedError):
            check_is_fitted(toy, "coef_")
        toy.coef_ = np.ones(2)
        check_is_fitted(toy, "coef_")  # no raise


class TestRandomState:
    def test_accepts_int(self):
        assert isinstance(check_random_state(3), np.random.Generator)

    def test_passthrough_generator(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)


class TestSampleWeight:
    def test_none_weight_is_uniform(self):
        y = np.array([0, 0, 1])
        assert np.allclose(compute_sample_weight(None, y), 1.0)

    def test_balanced_weights_rebalance(self):
        y = np.array([0, 0, 0, 1])
        weights = compute_sample_weight("balanced", y)
        # Total weight per class must be equal.
        assert np.isclose(weights[y == 0].sum(), weights[y == 1].sum())

    def test_dict_weights(self):
        y = np.array([0, 1, 1])
        weights = compute_sample_weight({0: 2.0, 1: 0.5}, y)
        assert np.allclose(weights, [2.0, 0.5, 0.5])

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            compute_sample_weight("bogus", np.array([0, 1]))
