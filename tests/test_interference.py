"""Interference & multi-tenancy: contention signals, corpora, labels.

Covers the acceptance contract of the interference-aware simulation:

- emitted ``kernel.all.cpu.steal`` is non-negative everywhere,
  positively correlated with injected neighbour contention, and ~0 on
  solo-tenant runs (even self-saturated ones);
- domain-non-negative gauges never emit negative values on any of the
  three synthesis paths (batch / streaming / fleet-batched);
- ``fair_share`` and its scalar work-conserving twin absorb
  microscopically negative demands from float rounding instead of
  raising mid-run, and stay bitwise-equal to each other;
- the interference corpus is bitwise identical at every ``n_jobs`` and
  its cause labels are coherent;
- the fleet telemetry path stays bitwise-equal to the per-instance
  reference with an antagonist co-located on the node.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.antagonist import (
    ANTAGONIST_KINDS,
    antagonist_application,
    antagonist_service,
)
from repro.apps.solr import solr_application
from repro.cluster.node import (
    MACHINES,
    NEGATIVE_DEMAND_TOLERANCE,
    fair_share,
)
from repro.cluster.simulation import (
    ClusterSimulation,
    Placement,
    _work_conserving_capacity,
    _work_conserving_scalar,
)
from repro.datasets.interference import (
    CAUSE_NEIGHBOR,
    CAUSE_NONE,
    CAUSE_SELF,
    InterferenceScenario,
    build_interference_corpus,
    generate_interference_run,
)
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import default_catalog

DURATION = 48
ONSET = 24


def _colocated(kind="cpu", duration=DURATION, onset=ONSET, seed=5,
               victim_rate=100.0, antagonist_rate=100.0, antagonist=True):
    """Solr victim on M3, optionally with an antagonist switching on
    mid-run.  Returns ``(result, victim_container)``."""
    simulation = ClusterSimulation({"M3": MACHINES["M3"]}, seed=seed)
    victim = solr_application()
    simulation.deploy(
        victim,
        {name: [Placement(node="M3")] for name in victim.services},
    )
    workloads = {victim.name: np.full(duration, victim_rate)}
    if antagonist:
        stressor = antagonist_application(kind)
        simulation.deploy(
            stressor,
            {name: [Placement(node="M3")] for name in stressor.services},
        )
        schedule = np.zeros(duration)
        schedule[onset:] = antagonist_rate
        workloads[stressor.name] = schedule
    result = simulation.run(workloads)
    container = next(
        c for c in result.containers if c.application == victim.name
    )
    return result, container


def _steal_column():
    return [s.name for s in default_catalog().host].index(
        "kernel.all.cpu.steal"
    )


class TestStealSignal:
    def test_nonnegative_and_correlated_with_contention(self):
        result, container = _colocated(kind="cpu")
        agent = TelemetryAgent(seed=5)
        matrix = agent.instance_matrix(container, result.nodes)
        steal = matrix[:, _steal_column()]
        assert float(steal.min()) >= 0.0
        pre, post = steal[:ONSET], steal[ONSET:]
        assert post.mean() > 50.0, "CPU antagonist should squeeze hard"
        assert pre.mean() < 0.5, "no contention before the onset"
        active = np.zeros(DURATION)
        active[ONSET:] = 1.0
        assert np.corrcoef(steal, active)[0, 1] > 0.9

    def test_solo_run_steal_is_near_zero_even_saturated(self):
        # 3000 req/s saturates Solr on M3 by its own load: steal must
        # stay ~0 because nobody else is stealing the node.
        result, container = _colocated(antagonist=False, victim_rate=3000.0)
        agent = TelemetryAgent(seed=5)
        matrix = agent.instance_matrix(container, result.nodes)
        steal = matrix[:, _steal_column()]
        assert float(steal.min()) >= 0.0
        assert float(steal.mean()) < 0.5

    def test_membw_and_disk_antagonists_move_their_channels(self):
        catalog = default_catalog()
        names = [s.name for s in catalog.host]
        i_membw = names.index("perfevent.hwcounters.llc_misses.value")
        i_aveq = names.index("disk.all.aveq")
        agent = TelemetryAgent(seed=5)
        for kind, column in (("membw", i_membw), ("disk", i_aveq)):
            result, container = _colocated(kind=kind)
            matrix = agent.instance_matrix(container, result.nodes)
            signal = matrix[:, column]
            assert signal[ONSET + 2 :].mean() > 1.5 * signal[:ONSET].mean(), (
                f"{kind} antagonist did not move {names[column]}"
            )


class TestNonnegativeGauges:
    """Regression: gauges whose domain is non-negative (steal, nice,
    guest) must never emit negative values from measurement noise."""

    def _nonneg_columns(self, catalog):
        host = [i for i, s in enumerate(catalog.host) if s.nonnegative]
        container = [
            catalog.n_host + i
            for i, s in enumerate(catalog.container)
            if s.nonnegative
        ]
        assert host, "expected non-negative host gauges in the catalog"
        return host + container

    def test_batch_path_never_negative(self):
        result, container = _colocated(antagonist=False, victim_rate=50.0)
        agent = TelemetryAgent(seed=11)
        matrix = agent.instance_matrix(container, result.nodes)
        for column in self._nonneg_columns(agent.catalog):
            assert float(matrix[:, column].min()) >= 0.0, column

    def test_streaming_path_never_negative(self):
        result, container = _colocated(antagonist=False, victim_rate=50.0)
        agent = TelemetryAgent(seed=11)
        stream = agent.open_stream(container, result.nodes)
        columns = self._nonneg_columns(agent.catalog)
        for _ in range(len(container.history)):
            row = stream.emit()
            for column in columns:
                assert float(row[column]) >= 0.0, column

    def test_fleet_batched_path_never_negative(self):
        from repro.fleet.telemetry import FleetTelemetryStream

        simulation = ClusterSimulation({"M3": MACHINES["M3"]}, seed=11)
        victim = solr_application()
        simulation.deploy(
            victim,
            {name: [Placement(node="M3")] for name in victim.services},
        )
        agent = TelemetryAgent(seed=11)
        container = next(
            instance.container
            for replicas in simulation.deployments[victim.name]
            .instances.values()
            for instance in replicas
        )
        fleet = FleetTelemetryStream(agent.catalog, capacity=4)
        fleet.add_row(0, "ns", agent, container, simulation.nodes)
        columns = self._nonneg_columns(agent.catalog)
        for _ in range(12):
            simulation.step({victim.name: 50.0})
            fleet.begin_tick()
            fleet.advance_round()
            for column in columns:
                assert float(fleet.raw[0, column]) >= 0.0, column


class TestFairShareTinyNegative:
    """Regression: microscopic negative demands (float rounding) are
    clamped, not fatal; genuinely negative demands still raise."""

    @given(
        eps=st.floats(min_value=0.0, max_value=NEGATIVE_DEMAND_TOLERANCE),
        other=st.floats(min_value=0.0, max_value=100.0),
        capacity=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_tiny_negative_is_clamped_to_zero(self, eps, other, capacity):
        shares = fair_share(np.array([-eps, other]), capacity)
        assert np.all(shares >= 0.0)
        assert shares[0] == 0.0 or eps == 0.0

    @given(
        eps=st.floats(min_value=0.0, max_value=NEGATIVE_DEMAND_TOLERANCE),
        others=st.lists(
            st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=5
        ),
        capacity=st.floats(min_value=0.5, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_scalar_work_conserving_matches_array_twin(
        self, eps, others, capacity
    ):
        demands = [-eps] + others
        scalar = _work_conserving_scalar(demands, capacity)
        array = _work_conserving_capacity(
            np.array(demands, dtype=np.float64), capacity
        )
        assert all(value >= 0.0 for value in scalar)
        assert scalar == list(array), "scalar/array paths diverged"

    def test_genuinely_negative_still_raises(self):
        with pytest.raises(ValueError):
            fair_share(np.array([-1e-3]), 4.0)
        with pytest.raises(ValueError):
            _work_conserving_scalar([-1e-3, 1.0], 4.0)


class TestAntagonistSpecs:
    def test_each_kind_builds_one_service(self):
        for kind in ANTAGONIST_KINDS:
            application = antagonist_application(kind)
            assert application.name == f"antagonist-{kind}"
            assert len(application.services) == 1

    def test_unknown_kind_and_bad_intensity_raise(self):
        with pytest.raises(ValueError):
            antagonist_service("network")
        with pytest.raises(ValueError):
            antagonist_service("cpu", intensity=0.0)


_SMALL_SCENARIOS = [
    InterferenceScenario(201, 2, "cpu"),
    InterferenceScenario(202, 2, None),
]


@pytest.fixture(scope="module")
def small_corpus():
    return build_interference_corpus(
        duration=40,
        calibration_duration=100,
        seed=7,
        scenarios=_SMALL_SCENARIOS,
    )


class TestInterferenceCorpus:
    def test_bitwise_deterministic_across_n_jobs(self, small_corpus):
        for n_jobs in (1, 2):
            again = build_interference_corpus(
                duration=40,
                calibration_duration=100,
                seed=7,
                scenarios=_SMALL_SCENARIOS,
                n_jobs=n_jobs,
            )
            assert np.array_equal(small_corpus.X, again.X), n_jobs
            assert np.array_equal(small_corpus.y, again.y)
            assert np.array_equal(small_corpus.cause, again.cause)
            assert np.array_equal(small_corpus.groups, again.groups)

    def test_cause_labels_are_coherent(self, small_corpus):
        interference, solo = small_corpus.runs
        # Neighbour-caused seconds only after the onset, only with an
        # antagonist present.
        assert (interference.cause == CAUSE_NEIGHBOR).any()
        neighbor_ticks = np.flatnonzero(
            interference.cause[:40] == CAUSE_NEIGHBOR
        )
        assert neighbor_ticks.min() >= interference.onset_tick
        assert not (solo.cause == CAUSE_NEIGHBOR).any()
        assert solo.y.sum() == 0, "sub-knee solo control must stay clean"
        # Degraded iff cause says so.
        for run in small_corpus.runs:
            assert np.array_equal(run.y == 0, run.cause == CAUSE_NONE)

    def test_self_overload_labels_self(self):
        run = generate_interference_run(
            InterferenceScenario(203, 2, None, victim_load=1.4),
            duration=40,
            calibration_duration=100,
            seed=7,
        )
        assert (run.cause == CAUSE_SELF).sum() > 20
        assert not (run.cause == CAUSE_NEIGHBOR).any()

    def test_groups_and_meta_align(self, small_corpus):
        assert small_corpus.X.shape[0] == small_corpus.y.size
        assert small_corpus.y.size == small_corpus.cause.size
        assert small_corpus.y.size == small_corpus.groups.size
        assert len(small_corpus.meta) == small_corpus.X.shape[1]
        assert set(np.unique(small_corpus.groups)) == {201, 202}


class TestFleetParityWithAntagonist:
    def test_fleet_rows_match_instance_matrix(self):
        """The fleet's batched synthesis stays bitwise-equal to the
        per-instance reference when an antagonist shares the node."""
        from repro.fleet.telemetry import FleetTelemetryStream

        simulation = ClusterSimulation({"M3": MACHINES["M3"]}, seed=9)
        victim = solr_application()
        simulation.deploy(
            victim,
            {name: [Placement(node="M3")] for name in victim.services},
        )
        stressor = antagonist_application("cpu")
        simulation.deploy(
            stressor,
            {name: [Placement(node="M3")] for name in stressor.services},
        )
        agent = TelemetryAgent(seed=9)
        containers = [
            instance.container
            for deployment in simulation.deployments.values()
            for replicas in deployment.instances.values()
            for instance in replicas
        ]
        fleet = FleetTelemetryStream(agent.catalog, capacity=len(containers))
        for row, container in enumerate(containers):
            fleet.add_row(row, "ns", agent, container, simulation.nodes)
        ticks = 20
        per_row = {row: [] for row in range(len(containers))}
        for t in range(ticks):
            simulation.step(
                {
                    victim.name: 100.0,
                    stressor.name: 100.0 if t >= 8 else 0.0,
                }
            )
            fleet.begin_tick()
            emitted = fleet.advance_round()
            for row in emitted:
                per_row[int(row)].append(fleet.raw[int(row)].copy())
        counter_cols = np.concatenate(
            [
                agent.catalog.spec_arrays(agent.catalog.host).counters,
                agent.catalog.spec_arrays(agent.catalog.container).counters,
            ]
        )
        for row, container in enumerate(containers):
            reference = agent.instance_matrix(container, simulation.nodes)
            assert len(per_row[row]) == ticks
            for k, values in enumerate(per_row[row]):
                if k == 0:
                    assert np.array_equal(
                        values[~counter_cols], reference[0][~counter_cols]
                    )
                else:
                    assert np.array_equal(values, reference[k]), (row, k)
