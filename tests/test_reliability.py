"""Tests for the degradation-tolerant serving layer
(`repro.reliability`): telemetry resilience, the policy fallback
chain, checkpoint/resume equivalence and the chaos harness."""

import numpy as np
import pytest

from repro import obs
from repro.apps.solr import solr_application
from repro.apps.teastore import teastore_application
from repro.cluster.faults import (
    DiskDegradation,
    FaultSchedule,
    MetricDropout,
    NodeSlowdown,
)
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.thresholds import ThresholdBaseline
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import MonitorlessPolicy, ThresholdPolicy
from repro.reliability.chaos import (
    ChaosAgent,
    ChaosConfig,
    TelemetryBlackout,
    run_chaos,
)
from repro.reliability.checkpoint import (
    CheckpointError,
    load_checkpoint,
    read_header,
)
from repro.reliability.fallback import (
    DEGRADED,
    FAILSAFE,
    HEALTHY,
    RECOVERING,
    FallbackPolicy,
)
from repro.reliability.telemetry import (
    ResilientInstanceStream,
    ResilientTelemetry,
    TelemetryFault,
    TelemetryUnavailable,
)
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.store import MetricFrame, MetricStream, UnknownMetricError
from repro.workloads.patterns import constant, linear_ramp


# ----------------------------------------------------------------------
# Shared scenario helpers
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def solr_run():
    simulation = ClusterSimulation(
        {"training": MACHINES["training"]}, seed=0
    )
    simulation.deploy(
        solr_application(), {"solr": [Placement(node="training")]}
    )
    return simulation.run({"solr": constant(40, 300.0)})


class _ScriptedStream:
    """Instance-stream wrapper failing per a scripted {tick: mode} plan.

    Modes: ``"hard"`` fails every attempt of that tick, ``"transient"``
    fails the first attempt only, ``"nan"`` delivers the row with its
    first five entries NaN-ed.
    """

    def __init__(self, inner, plan):
        self.inner = inner
        self.plan = dict(plan)
        self._delayed = set()
        self.attempts = 0

    @property
    def container(self):
        return self.inner.container

    @property
    def tail(self):
        return self.inner.tail

    @property
    def clock(self):
        return self.inner.clock

    def emit(self):
        t = self.inner.clock
        self.attempts += 1
        mode = self.plan.get(t, "ok")
        if mode == "hard":
            raise TelemetryFault(f"scripted hard failure at {t}")
        if mode == "transient" and t not in self._delayed:
            self._delayed.add(t)
            raise TelemetryFault(f"scripted delayed reading at {t}")
        row = self.inner.emit()
        if mode == "nan":
            row = row.copy()
            row[:5] = np.nan
            self.inner.tail.amend_last(row)
        return row

    def skip(self):
        self.inner.skip()


def _open_resilient(solr_run, plan, **kwargs):
    agent = TelemetryAgent(seed=0)
    inner = agent.open_stream(solr_run.containers[0], solr_run.nodes)
    return ResilientInstanceStream(_ScriptedStream(inner, plan), **kwargs)


def _clean_rows(solr_run, n):
    agent = TelemetryAgent(seed=0)
    stream = agent.open_stream(solr_run.containers[0], solr_run.nodes)
    return np.vstack([stream.emit() for _ in range(n)])


# ----------------------------------------------------------------------
# Satellite: descriptive store errors + safe-subset API
# ----------------------------------------------------------------------
class TestUnknownMetricError:
    def _frame(self):
        return MetricFrame(np.arange(6.0).reshape(2, 3), ["a", "b", "c"])

    def test_select_names_missing_and_available(self):
        with pytest.raises(UnknownMetricError) as info:
            self._frame().select(["a", "ghost", "phantom"])
        message = str(info.value)
        assert "ghost" in message and "phantom" in message
        assert "a" in message  # lists what IS available

    def test_is_a_keyerror(self):
        with pytest.raises(KeyError):
            self._frame().column("ghost")

    def test_has_metric(self):
        frame = self._frame()
        assert frame.has_metric("b")
        assert not frame.has_metric("ghost")

    def test_select_available_skips_unknown(self):
        subset = self._frame().select_available(["c", "ghost", "a"])
        assert subset.columns == ["c", "a"]
        assert np.array_equal(subset.values, [[2.0, 0.0], [5.0, 3.0]])

    def test_select_available_all_unknown_is_empty(self):
        subset = self._frame().select_available(["x", "y"])
        assert subset.shape == (2, 0)


class TestMetricStreamCompleteness:
    def test_default_push_is_complete(self):
        stream = MetricStream(["a", "b"], capacity=4)
        stream.push([1.0, 2.0])
        assert stream.last_completeness() == 1.0

    def test_flagged_push_and_window(self):
        stream = MetricStream(["a"], capacity=3)
        for completeness in (1.0, 0.25, 0.0, 1.0, 0.5):
            stream.push([0.0], completeness=completeness)
        # capacity 3: the retained tail is the last three pushes.
        assert np.array_equal(
            stream.completeness_window(), [0.0, 1.0, 0.5]
        )
        assert stream.last_completeness() == 0.5

    def test_amend_last_rewrites_row_and_flag(self):
        stream = MetricStream(["a", "b"], capacity=2)
        stream.push([1.0, 2.0])
        stream.amend_last([9.0, 9.0], completeness=0.5)
        assert np.array_equal(stream.last(), [9.0, 9.0])
        assert stream.last_completeness() == 0.5
        assert stream.total == 1  # amending is not a new tick

    def test_amend_empty_stream_raises(self):
        with pytest.raises(ValueError, match="empty"):
            MetricStream(["a"], capacity=2).amend_last([1.0])

    def test_invalid_completeness_rejected(self):
        stream = MetricStream(["a"], capacity=2)
        with pytest.raises(ValueError, match="completeness"):
            stream.push([1.0], completeness=1.5)

    def test_has_metric(self):
        stream = MetricStream(["a"], capacity=2)
        assert stream.has_metric("a") and not stream.has_metric("z")


# ----------------------------------------------------------------------
# Tentpole 1: telemetry resilience
# ----------------------------------------------------------------------
class TestResilientStream:
    def test_clean_passthrough_is_bitwise(self, solr_run):
        stream = _open_resilient(solr_run, {})
        rows = np.vstack([stream.emit() for _ in range(20)])
        assert np.array_equal(rows, _clean_rows(solr_run, 20))
        assert stream.staleness == 0 and stream.imputed_ticks == 0

    def test_transient_failure_is_retried(self, solr_run):
        stream = _open_resilient(solr_run, {3: "transient"}, max_retries=2)
        rows = np.vstack([stream.emit() for _ in range(10)])
        assert np.array_equal(rows, _clean_rows(solr_run, 10))
        assert stream.retries == 1
        assert stream.lost_ticks == 0

    def test_backoff_is_deterministic_and_surfaced(self, solr_run):
        delays = []
        stream = _open_resilient(
            solr_run,
            {2: "hard"},
            max_retries=3,
            backoff_base=0.05,
            sleep=delays.append,
        )
        for _ in range(5):
            stream.emit()
        assert delays == [0.05, 0.1, 0.2]

    def test_hard_failure_imputes_under_budget(self, solr_run):
        stream = _open_resilient(
            solr_run, {4: "hard", 5: "hard"}, staleness_budget=3
        )
        rows = [stream.emit() for _ in range(10)]
        clean = _clean_rows(solr_run, 10)
        # Ticks 4 and 5 repeat the last real row (tick 3)...
        assert np.array_equal(rows[4], clean[3])
        assert np.array_equal(rows[5], clean[3])
        # ... are flagged in the tail ...
        assert np.array_equal(
            stream.tail.completeness_window()[-6:],
            [0.0, 0.0, 1.0, 1.0, 1.0, 1.0],
        )
        assert stream.imputed_ticks == 2
        # ... and staleness resets on the next real reading.
        assert stream.staleness == 0

    def test_budget_exhaustion_raises_then_recovers(self, solr_run):
        plan = {t: "hard" for t in range(3, 9)}
        stream = _open_resilient(solr_run, plan, staleness_budget=2)
        outcomes = []
        for _ in range(12):
            try:
                stream.emit()
                outcomes.append("row")
            except TelemetryUnavailable:
                outcomes.append("unavailable")
        # Ticks 3-4 imputed, 5-8 over budget, 9+ real again.
        assert outcomes == (
            ["row"] * 3 + ["row"] * 2 + ["unavailable"] * 4 + ["row"] * 3
        )
        # The clock advanced through the outage -- one bad tick can
        # never wedge the stream.
        assert stream.clock == 12
        assert stream.staleness == 0

    def test_no_prior_observation_raises(self, solr_run):
        stream = _open_resilient(solr_run, {0: "hard"}, staleness_budget=5)
        with pytest.raises(TelemetryUnavailable, match="no prior"):
            stream.emit()
        # The next tick delivers normally.
        row = stream.emit()
        assert row.shape == (1040,)

    def test_budget_zero_disables_imputation(self, solr_run):
        stream = _open_resilient(solr_run, {2: "hard"}, staleness_budget=0)
        stream.emit()
        stream.emit()
        with pytest.raises(TelemetryUnavailable, match="budget 0"):
            stream.emit()

    def test_nan_masking_carries_last_value(self, solr_run):
        stream = _open_resilient(solr_run, {5: "nan"})
        rows = [stream.emit() for _ in range(8)]
        clean = _clean_rows(solr_run, 8)
        assert np.array_equal(rows[5][:5], clean[4][:5])  # masked cells
        assert np.array_equal(rows[5][5:], clean[5][5:])  # the rest is live
        assert not np.isnan(np.vstack(rows)).any()
        assert stream.masked_values == 5
        assert stream.tail.completeness_window()[-3] < 1.0

    def test_nan_at_stream_start_masks_to_zero(self, solr_run):
        stream = _open_resilient(solr_run, {0: "nan"})
        row = stream.emit()
        assert np.array_equal(row[:5], np.zeros(5))

    def test_agent_wrapper_passthrough(self, solr_run):
        agent = TelemetryAgent(seed=0)
        resilient = ResilientTelemetry(agent, staleness_budget=2)
        container = solr_run.containers[0]
        assert np.array_equal(
            resilient.instance_matrix(container, solr_run.nodes),
            agent.instance_matrix(container, solr_run.nodes),
        )
        stream = resilient.open_stream(container, solr_run.nodes)
        assert isinstance(stream, ResilientInstanceStream)
        assert stream.staleness_budget == 2

    def test_invalid_parameters(self, solr_run):
        agent = TelemetryAgent(seed=0)
        with pytest.raises(ValueError):
            ResilientTelemetry(agent, staleness_budget=-1)
        with pytest.raises(ValueError):
            ResilientTelemetry(agent, max_retries=-1)


class TestDropoutThroughResilience:
    """Fault-injection edge cases end-to-end through the new layer."""

    def _resilient_dropout(self, solr_run, probability):
        dropout = MetricDropout(
            TelemetryAgent(seed=0), probability=probability, seed=1
        )
        resilient = ResilientTelemetry(dropout, staleness_budget=3)
        return resilient.open_stream(solr_run.containers[0], solr_run.nodes)

    def test_zero_probability_is_identity(self, solr_run):
        stream = self._resilient_dropout(solr_run, 0.0)
        rows = np.vstack([stream.emit() for _ in range(25)])
        assert np.array_equal(rows, _clean_rows(solr_run, 25))

    def test_total_dropout_freezes_at_first_row(self, solr_run):
        stream = self._resilient_dropout(solr_run, 1.0)
        rows = np.vstack([stream.emit() for _ in range(25)])
        assert np.array_equal(rows[1:], np.tile(rows[0], (24, 1)))
        # Dropout delivers (held) readings, so nothing is ever imputed.
        assert stream.imputed_ticks == 0

    def test_streaming_dropout_matches_batch(self, solr_run):
        """Opened at creation, the dropout stream reproduces the batch
        dropout matrix bitwise (modulo the documented first-tick
        counter-rate divergence, removed here via convert_counters)."""
        dropout = MetricDropout(
            TelemetryAgent(seed=0, convert_counters=False),
            probability=0.4,
            seed=1,
        )
        container = solr_run.containers[0]
        batch = dropout.instance_matrix(container, solr_run.nodes)
        stream = dropout.open_stream(container, solr_run.nodes)
        rows = np.vstack([stream.emit() for _ in range(40)])
        assert np.array_equal(rows, batch)

    def test_dropout_flags_completeness(self, solr_run):
        dropout = MetricDropout(TelemetryAgent(seed=0), probability=0.5, seed=1)
        stream = dropout.open_stream(solr_run.containers[0], solr_run.nodes)
        for _ in range(10):
            stream.emit()
        flags = stream.tail.completeness_window()
        assert flags[0] == 1.0  # first row always fully observed
        assert (flags[1:] < 1.0).any()


# ----------------------------------------------------------------------
# Satellite: FaultSchedule composition order
# ----------------------------------------------------------------------
class TestFaultCompositionOrder:
    def test_overlapping_faults_compose_in_sorted_order(self):
        # Integer core rounding makes slowdown composition order
        # observable: 0.7 then 0.55 gives round(round(48*.7)*.55)=19,
        # the reverse gives 18.
        a = NodeSlowdown(node="training", factor=0.7, start=0, end=20)
        b = NodeSlowdown(node="training", factor=0.55, start=2, end=20)
        results = []
        for faults in ([a, b], [b, a]):
            simulation = ClusterSimulation(
                {"training": MACHINES["training"]}, seed=0
            )
            schedule = FaultSchedule(faults)
            pristine = schedule.pristine_specs(simulation)
            schedule.apply_tick(simulation, pristine, 5)
            results.append(simulation.nodes["training"].spec.cores)
            schedule.restore(simulation, pristine)
            assert simulation.nodes["training"].spec.cores == 48
        # List order must not matter, and the defined order is sorted
        # by (start, class name): a (start 0) before b (start 2).
        assert results[0] == results[1] == 19

    def test_equal_start_sorts_by_class_name(self):
        slow = NodeSlowdown(node="training", factor=0.5, start=0, end=10)
        disk = DiskDegradation(node="training", factor=0.5, start=0, end=10)
        schedule = FaultSchedule([slow, disk])
        ordered = schedule._by_node["training"]
        assert [type(f).__name__ for f in ordered] == [
            "DiskDegradation",
            "NodeSlowdown",
        ]

    def test_run_results_independent_of_list_order(self):
        a = NodeSlowdown(node="training", factor=0.7, start=5, end=25)
        b = NodeSlowdown(node="training", factor=0.55, start=10, end=30)
        outcomes = []
        for faults in ([a, b], [b, a]):
            simulation = ClusterSimulation(
                {"training": MACHINES["training"]}, seed=0
            )
            simulation.deploy(
                solr_application(), {"solr": [Placement(node="training")]}
            )
            result = FaultSchedule(faults).run(
                simulation, {"solr": constant(40, 600.0)}
            )
            outcomes.append(result.kpi("solr", "throughput"))
        assert np.array_equal(outcomes[0], outcomes[1])


# ----------------------------------------------------------------------
# Tentpole 2: the fallback chain
# ----------------------------------------------------------------------
def _teastore_simulation(seed=0):
    simulation = ClusterSimulation(evaluation_nodes(), seed=seed)
    simulation.deploy(teastore_application(), teastore_placements())
    return simulation


def _fallback_setup(
    tiny_model,
    blackouts,
    *,
    budget=2,
    failsafe="hold",
    recovery_ticks=2,
    state_failure_probability=0.0,
):
    simulation = _teastore_simulation()
    config = ChaosConfig(
        dropout_probability=0.0,
        hard_failure_probability=0.0,
        transient_failure_probability=0.0,
        nan_probability=0.0,
        state_failure_probability=state_failure_probability,
        blackouts=tuple(blackouts),
        node_faults=(),
        staleness_budget=budget,
    )
    chaotic = ChaosAgent(TelemetryAgent(seed=0), config)
    resilient = ResilientTelemetry(chaotic, staleness_budget=budget)
    primary = MonitorlessPolicy(tiny_model, resilient, streaming=True)
    secondary = ThresholdPolicy(
        ThresholdBaseline(
            kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
        ),
        chaotic,
    )
    policy = FallbackPolicy(
        primary, secondary, failsafe=failsafe, recovery_ticks=recovery_ticks
    )
    return simulation, policy


def _drive(simulation, policy, ticks, rate=30.0):
    timeline = []
    for t in range(ticks):
        simulation.step({"teastore": rate})
        saturated = policy.saturated_services(simulation, "teastore", t)
        timeline.append((set(policy.health.values()), saturated))
    return timeline


class TestFallbackPolicy:
    def test_requires_streaming_primary(self, tiny_model):
        agent = TelemetryAgent(seed=0)
        primary = MonitorlessPolicy(tiny_model, agent, streaming=False)
        secondary = ThresholdPolicy(
            ThresholdBaseline(
                kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
            ),
            agent,
        )
        with pytest.raises(ValueError, match="streaming"):
            FallbackPolicy(primary, secondary)

    def test_invalid_failsafe_rejected(self, tiny_model):
        simulation, policy = _fallback_setup(tiny_model, [])
        with pytest.raises(ValueError, match="failsafe"):
            FallbackPolicy(
                policy.primary, policy.secondary, failsafe="panic"
            )

    def test_healthy_on_clean_telemetry(self, tiny_model):
        simulation, policy = _fallback_setup(tiny_model, [])
        _drive(simulation, policy, 5)
        assert set(policy.health.values()) == {HEALTHY}
        assert policy.demotions == 0 and policy.recoveries == 0

    def test_demotion_and_recovery_cycle(self, tiny_model):
        # budget=2: blackout ticks 5-6 imputed, 7+ demoted; clears at 12.
        blackout = TelemetryBlackout(5, 12, scope="stream")
        simulation, policy = _fallback_setup(tiny_model, [blackout])
        _drive(simulation, policy, 8)
        assert set(policy.health.values()) == {DEGRADED}
        assert policy.demotions >= len(policy.health)
        _drive(simulation, policy, 4)  # ticks 8..11 still dark
        assert set(policy.health.values()) == {DEGRADED}
        _drive(simulation, policy, 1)  # tick 12: first clean reading
        assert set(policy.health.values()) == {RECOVERING}
        _drive(simulation, policy, 1)  # second success: recovered
        assert set(policy.health.values()) == {HEALTHY}
        assert policy.recoveries >= len(policy.health)

    def test_failsafe_hold_vs_scale_up(self, tiny_model):
        blackout = TelemetryBlackout(3, 10, scope="both")
        for failsafe, expect_all in (("hold", False), ("scale-up", True)):
            simulation, policy = _fallback_setup(
                tiny_model, [blackout], budget=0, failsafe=failsafe
            )
            timeline = _drive(simulation, policy, 6)
            assert set(policy.health.values()) == {FAILSAFE}
            assert policy.failsafe_entries >= len(policy.health)
            _, saturated = timeline[-1]
            if expect_all:
                assert saturated == set(
                    simulation.deployments["teastore"].instances
                )
            else:
                assert saturated == set()

    def test_classifier_failure_demotes_all(self, tiny_model, monkeypatch):
        simulation, policy = _fallback_setup(tiny_model, [])
        _drive(simulation, policy, 3)
        assert set(policy.health.values()) == {HEALTHY}

        def explode(*args, **kwargs):
            raise RuntimeError("classifier down")

        monkeypatch.setattr(policy.primary, "_classify", explode)
        simulation.step({"teastore": 30.0})
        saturated = policy.saturated_services(simulation, "teastore", 3)
        assert set(policy.health.values()) == {DEGRADED}
        assert isinstance(saturated, set)

    def test_obs_counters_exported(self, tiny_model):
        blackout = TelemetryBlackout(2, 8, scope="stream")
        simulation, policy = _fallback_setup(
            tiny_model, [blackout], budget=0, recovery_ticks=1
        )
        obs.reset()
        obs.enable()
        try:
            _drive(simulation, policy, 10)
            snapshot = obs.snapshot()
        finally:
            obs.disable()
            obs.reset()
        counters = snapshot["counters"]
        assert counters["fallback.demotions"] >= 1
        assert counters["fallback.recoveries"] >= 1
        gauges = snapshot["gauges"]
        assert gauges["fallback.containers_healthy"] == len(policy.health)


# ----------------------------------------------------------------------
# Tentpole 3: checkpoint / resume
# ----------------------------------------------------------------------
def _threshold_orchestrator(seed=0):
    simulation = _teastore_simulation(seed)
    policy = ThresholdPolicy(
        ThresholdBaseline(
            kind="cpu-or-mem", cpu_threshold=60.0, mem_threshold=80.0
        ),
        TelemetryAgent(seed=seed),
    )
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    return Orchestrator(simulation, "teastore", policy, rules)


def _monitorless_orchestrator(tiny_model, seed=0):
    simulation = _teastore_simulation(seed)
    blackout = TelemetryBlackout(20, 28, scope="stream")
    config = ChaosConfig(
        dropout_probability=0.1,
        hard_failure_probability=0.02,
        transient_failure_probability=0.03,
        nan_probability=0.02,
        state_failure_probability=0.0,
        blackouts=(blackout,),
        node_faults=(),
        staleness_budget=3,
    )
    chaotic = ChaosAgent(
        MetricDropout(TelemetryAgent(seed=seed), probability=0.1, seed=1),
        config,
    )
    resilient = ResilientTelemetry(chaotic, staleness_budget=3)
    primary = MonitorlessPolicy(tiny_model, resilient, streaming=True)
    secondary = ThresholdPolicy(
        ThresholdBaseline(
            kind="cpu-or-mem", cpu_threshold=80.0, mem_threshold=80.0
        ),
        chaotic,
    )
    policy = FallbackPolicy(primary, secondary, recovery_ticks=2)
    rules = ScalingRules(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0, memory_limit=4 * 2**30),
            "recommender": Placement(
                node="M2", cpu_limit=1.0, memory_limit=4 * 2**30
            ),
            "webui": Placement(node="M2", cpu_limit=1.0, memory_limit=4 * 2**30),
        },
        replica_lifespan=120,
        scale_groups=(("auth", "recommender"),),
    )
    return Orchestrator(simulation, "teastore", policy, rules)


def _run_to_end(orchestrator, workload, start=0):
    for t in range(start, len(workload)):
        orchestrator.tick({"teastore": float(workload[t])})
    return orchestrator.finish()


class TestCheckpointResume:
    def test_kill_and_resume_is_bitwise_at_three_ticks(self, tmp_path):
        """The core equivalence: checkpoint at tick k, discard the
        original, resume from disk, finish -- decisions and KPI
        timelines must be bitwise identical to the uninterrupted run,
        for three different checkpoint ticks."""
        duration = 70
        workload = linear_ramp(duration, 10, 260)
        reference = _threshold_orchestrator()
        reference.start()
        result = _run_to_end(reference, workload)

        for checkpoint_tick in (9, 33, 58):
            orchestrator = _threshold_orchestrator()
            orchestrator.start()
            for t in range(checkpoint_tick):
                orchestrator.tick({"teastore": float(workload[t])})
            path = tmp_path / f"ckpt_{checkpoint_tick}.bin"
            header = orchestrator.save_checkpoint(path)
            assert header["tick"] == checkpoint_tick
            del orchestrator  # the "crash"

            resumed = Orchestrator.resume_from(path)
            out = _run_to_end(resumed, workload, start=checkpoint_tick)
            assert np.array_equal(out.extra_replicas, result.extra_replicas)
            assert np.array_equal(out.violations, result.violations)
            assert np.array_equal(out.response_time, result.response_time)
            assert np.array_equal(out.throughput, result.throughput)
            assert out.total_scale_outs == result.total_scale_outs

    def test_resume_preserves_streams_and_health_under_chaos(
        self, tiny_model, tmp_path
    ):
        """Resume mid-outage with the full resilience stack: streaming
        state (ring buffers, RNGs, staleness, health machine) must
        round-trip so decisions *and telemetry matrices* stay bitwise
        identical."""
        duration = 45
        workload = linear_ramp(duration, 10, 260)
        reference = _monitorless_orchestrator(tiny_model)
        reference.start()
        result = _run_to_end(reference, workload)
        reference_tails = {
            name: stream.telemetry.tail.window()
            for name, stream in reference.policy.primary._streams.items()
        }

        checkpoint_tick = 23  # inside the blackout window
        orchestrator = _monitorless_orchestrator(tiny_model)
        orchestrator.start()
        for t in range(checkpoint_tick):
            orchestrator.tick({"teastore": float(workload[t])})
        path = tmp_path / "chaos.ckpt"
        orchestrator.save_checkpoint(path)
        del orchestrator

        resumed = Orchestrator.resume_from(path)
        out = _run_to_end(resumed, workload, start=checkpoint_tick)
        assert np.array_equal(out.extra_replicas, result.extra_replicas)
        assert np.array_equal(out.violations, result.violations)
        assert np.array_equal(out.response_time, result.response_time)
        assert out.total_scale_outs == result.total_scale_outs
        assert resumed.policy.health == reference.policy.health
        assert resumed.policy.demotions == reference.policy.demotions
        assert resumed.policy.recoveries == reference.policy.recoveries
        resumed_tails = {
            name: stream.telemetry.tail.window()
            for name, stream in resumed.policy.primary._streams.items()
        }
        assert set(resumed_tails) == set(reference_tails)
        for name, tail in reference_tails.items():
            assert np.array_equal(resumed_tails[name], tail)

    def test_header_readable_without_unpickling(self, tmp_path):
        orchestrator = _threshold_orchestrator()
        orchestrator.start()
        path = tmp_path / "fresh.ckpt"
        orchestrator.save_checkpoint(path)
        header = read_header(path)
        assert header["application"] == "teastore"
        assert header["format"] == 1
        assert not path.with_name(path.name + ".tmp").exists()  # atomic

    def test_corrupt_files_raise_checkpoint_error(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"not a checkpoint")
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

        orchestrator = _threshold_orchestrator()
        orchestrator.start()
        good = tmp_path / "good.ckpt"
        orchestrator.save_checkpoint(good)
        blob = good.read_bytes()
        truncated = tmp_path / "truncated.ckpt"
        truncated.write_bytes(blob[:-10])
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(truncated)
        flipped = tmp_path / "flipped.ckpt"
        flipped.write_bytes(blob[:-1] + bytes([blob[-1] ^ 0xFF]))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(flipped)
        with pytest.raises(CheckpointError, match="read"):
            load_checkpoint(tmp_path / "missing.ckpt")


# ----------------------------------------------------------------------
# Tentpole 4: the chaos harness
# ----------------------------------------------------------------------
class TestChaosHarness:
    def test_blackout_validation(self):
        with pytest.raises(ValueError):
            TelemetryBlackout(5, 5)
        with pytest.raises(ValueError):
            TelemetryBlackout(0, 5, scope="everything")

    def test_seeded_chaos_completes_and_recovers(self, tiny_model):
        """The acceptance scenario: >= 10% dropout plus injected agent
        exceptions; the loop completes, the fallback chain records
        demotions and recoveries via obs counters, and the
        SLO-violation delta stays within the documented bound."""
        report = run_chaos(tiny_model, duration=120, seed=0)
        assert report.obs_counters["fallback.demotions"] >= 1
        assert report.obs_counters["fallback.recoveries"] >= 1
        assert report.imputed_ticks > 0
        assert report.retries > 0
        assert report.readings_dropped > 0
        assert report.within_bound
        assert (
            report.chaos_violations - report.clean_violations
            <= report.violation_bound
        )
        # Every container ends the run healthy: faults cleared, chain
        # recovered.
        assert set(report.health_final.values()) == {HEALTHY}
        # The safe-subset summary only contains metrics that exist.
        assert "not.a.metric" not in report.telemetry_summary

    def test_chaos_is_deterministic(self, tiny_model):
        first = run_chaos(tiny_model, duration=60, seed=7)
        second = run_chaos(tiny_model, duration=60, seed=7)
        assert first.to_dict() == second.to_dict()

    def test_obs_state_restored(self, tiny_model):
        assert not obs.enabled()
        run_chaos(tiny_model, duration=40, seed=0)
        assert not obs.enabled()
        assert obs.snapshot()["counters"] == {}
