"""Tests for SLO detection, autoscaling and the closed loop."""

import numpy as np
import pytest

from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.thresholds import ThresholdBaseline
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.orchestrator.autoscaler import Autoscaler, ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import (
    NoScalingPolicy,
    ResponseTimePolicy,
    ThresholdPolicy,
)
from repro.orchestrator.slo import SloPolicy, slo_violations
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.patterns import constant, step_levels


class TestSlo:
    def test_high_rt_violates(self):
        violations = slo_violations(
            np.array([0.1, 0.8, 0.2]),
            np.zeros(3),
            np.full(3, 100.0),
        )
        assert violations.tolist() == [False, True, False]

    def test_drops_violate(self):
        violations = slo_violations(
            np.full(2, 0.1), np.array([0.0, 5.0]), np.full(2, 100.0)
        )
        assert violations.tolist() == [False, True]

    def test_custom_policy(self):
        policy = SloPolicy(max_average_response_time=0.2)
        violations = slo_violations(
            np.array([0.3]), np.zeros(1), np.ones(1), policy
        )
        assert violations[0]

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SloPolicy(max_average_response_time=0.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            slo_violations(np.zeros(2), np.zeros(3), np.zeros(2))


def _teastore_sim():
    sim = ClusterSimulation(evaluation_nodes(), seed=0)
    sim.deploy(teastore_application(), teastore_placements())
    return sim


def _rules(**overrides):
    defaults = dict(
        placements={
            "auth": Placement(node="M2", cpu_limit=2.0),
            "recommender": Placement(node="M2", cpu_limit=1.0),
            "webui": Placement(node="M2", cpu_limit=1.0),
        },
        replica_lifespan=30,
    )
    defaults.update(overrides)
    return ScalingRules(**defaults)


class TestScalingRules:
    def test_group_coupling(self):
        rules = _rules(scale_groups=(("auth", "recommender"),))
        assert rules.expand({"auth"}) == {"auth", "recommender"}

    def test_unplaced_services_filtered(self):
        rules = _rules()
        assert rules.expand({"db"}) == set()

    def test_scalable_whitelist(self):
        rules = _rules(scalable=frozenset({"auth"}))
        assert rules.expand({"auth", "webui"}) == {"auth"}


class TestAutoscaler:
    def test_scale_out_and_expire(self):
        sim = _teastore_sim()
        scaler = Autoscaler(simulation=sim, application="teastore", rules=_rules())
        sim.step({"teastore": 10.0})
        scaler.act({"auth"}, t=0)
        assert sim.replica_counts("teastore")["auth"] == 2
        assert scaler.extra_replicas == 1
        # After the lifespan, the replica is retired.
        scaler.act(set(), t=31)
        assert sim.replica_counts("teastore")["auth"] == 1
        assert scaler.extra_replicas == 0

    def test_max_replicas_cap(self):
        sim = _teastore_sim()
        rules = _rules(max_replicas=2)
        scaler = Autoscaler(simulation=sim, application="teastore", rules=rules)
        sim.step({"teastore": 10.0})
        scaler.act({"auth"}, t=0)
        scaler.act({"auth"}, t=1)
        assert sim.replica_counts("teastore")["auth"] == 2  # capped

    def test_scale_out_counter(self):
        sim = _teastore_sim()
        scaler = Autoscaler(simulation=sim, application="teastore", rules=_rules())
        sim.step({"teastore": 10.0})
        scaler.act({"auth", "webui"}, t=0)
        assert scaler.total_scale_outs == 2


class TestPolicies:
    def test_threshold_policy_detects_hot_container(self):
        sim = _teastore_sim()
        agent = TelemetryAgent(seed=0)
        policy = ThresholdPolicy(ThresholdBaseline("cpu", 90.0, None), agent)
        for _ in range(20):
            sim.step({"teastore": 900.0})  # way past webui capacity
        saturated = policy.saturated_services(sim, "teastore", 19)
        assert "webui" in saturated

    def test_threshold_policy_quiet_when_idle(self):
        sim = _teastore_sim()
        agent = TelemetryAgent(seed=0)
        policy = ThresholdPolicy(ThresholdBaseline("cpu", 90.0, None), agent)
        for _ in range(5):
            sim.step({"teastore": 5.0})
        assert policy.saturated_services(sim, "teastore", 4) == set()

    def test_rt_policy_uses_kpi(self):
        sim = _teastore_sim()
        policy = ResponseTimePolicy(["auth", "recommender"], rt_threshold=0.5)
        for _ in range(10):
            sim.step({"teastore": 1500.0})
        assert policy.saturated_services(sim, "teastore", 9) == {
            "auth",
            "recommender",
        }

    def test_no_scaling_policy(self):
        sim = _teastore_sim()
        sim.step({"teastore": 1000.0})
        assert NoScalingPolicy().saturated_services(sim, "teastore", 0) == set()

    def test_monitorless_policy_runs(self, tiny_model):
        from repro.orchestrator.policies import MonitorlessPolicy

        sim = _teastore_sim()
        agent = TelemetryAgent(seed=0)
        policy = MonitorlessPolicy(tiny_model, agent, window=8)
        for _ in range(10):
            sim.step({"teastore": 300.0})
        saturated = policy.saturated_services(sim, "teastore", 9)
        assert isinstance(saturated, set)
        assert saturated <= set(teastore_application().service_names())


class TestOrchestratorLoop:
    def test_no_scaling_run_accounts_violations(self):
        sim = _teastore_sim()
        orchestrator = Orchestrator(sim, "teastore", NoScalingPolicy())
        workload = step_levels([20, 20], [50.0, 900.0])
        result = orchestrator.run({"teastore": workload})
        assert result.duration == 40
        assert result.slo_violation_count > 0
        assert result.average_provisioning == 0.0

    def test_rt_scaling_reduces_violations(self):
        def run(policy, rules):
            sim = _teastore_sim()
            orchestrator = Orchestrator(sim, "teastore", policy, rules)
            workload = step_levels([10, 60, 30], [100.0, 700.0, 100.0])
            return orchestrator.run({"teastore": workload})

        static = run(NoScalingPolicy(), None)
        scaled = run(
            ResponseTimePolicy(["auth", "recommender", "webui"], rt_threshold=0.4),
            _rules(replica_lifespan=60),
        )
        assert scaled.slo_violation_count < static.slo_violation_count
        assert scaled.average_provisioning > 0.0

    def test_result_row_shape(self):
        sim = _teastore_sim()
        orchestrator = Orchestrator(sim, "teastore", NoScalingPolicy())
        result = orchestrator.run({"teastore": constant(10, 50.0)})
        row = result.as_row()
        assert set(row) == {"algorithm", "provisioning", "slo_violations"}

    def test_unknown_application_rejected(self):
        sim = _teastore_sim()
        with pytest.raises(ValueError, match="not deployed"):
            Orchestrator(sim, "nope", NoScalingPolicy())
