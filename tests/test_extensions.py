"""Tests for the section-5 extension features: domain adaptation,
interpretability, rightsizing, edge offloading, multi-class labeling
and the call-graph substrate."""

import numpy as np
import pytest

from repro.core.adaptation import CoralAligner, ImportanceWeighter
from repro.core.interpret import LimeExplainer, SurrogateTree
from repro.core.labeling import MultiLevelLabeler
from repro.apps.callgraph import (
    CallGraph,
    sockshop_call_graph,
    teastore_call_graph,
)
from repro.apps.sockshop import _PROFILES as SOCKSHOP_PROFILES
from repro.apps.teastore import teastore_application
from repro.orchestrator.rightsizing import (
    Recommendation,
    Rightsizer,
    RightsizingModel,
    label_overprovisioning,
)


def shifted_domains(seed=0, n=400, d=6, shift=3.0):
    """Source and target data differing by a mean/covariance shift."""
    rng = np.random.default_rng(seed)
    source = rng.normal(size=(n, d))
    transform = np.eye(d) + 0.3 * rng.normal(size=(d, d))
    target = rng.normal(size=(n, d)) @ transform + shift
    return source, target


class TestCoral:
    def test_alignment_reduces_covariance_distance(self):
        source, target = shifted_domains()
        aligner = CoralAligner().fit(source, target)
        before = aligner.alignment_distance(source, target)
        after = aligner.alignment_distance(aligner.transform(source), target)
        assert after < before * 0.5

    def test_aligned_mean_matches_target(self):
        source, target = shifted_domains()
        aligned = CoralAligner().fit_transform(source, target)
        assert np.allclose(aligned.mean(axis=0), target.mean(axis=0), atol=0.2)

    def test_identity_when_domains_match(self):
        source, _ = shifted_domains()
        aligned = CoralAligner().fit_transform(source, source.copy())
        assert np.allclose(aligned, source, atol=0.05)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError, match="feature space"):
            CoralAligner().fit(np.zeros((5, 3)), np.zeros((5, 4)))

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            CoralAligner(eps=0.0)


class TestImportanceWeighter:
    def test_weights_favor_target_like_samples(self):
        rng = np.random.default_rng(1)
        source = rng.normal(0.0, 1.0, size=(500, 3))
        target = rng.normal(2.0, 1.0, size=(500, 3))
        weighter = ImportanceWeighter(random_state=0).fit(source, target)
        weights = weighter.weights(source)
        # Source samples closer to the target mean get higher weight.
        near = weights[source[:, 0] > 1.0].mean()
        far = weights[source[:, 0] < -1.0].mean()
        assert near > far

    def test_weights_normalized_to_mean_one(self):
        source, target = shifted_domains(seed=2)
        weighter = ImportanceWeighter(random_state=0).fit(source, target)
        assert np.isclose(weighter.weights(source).mean(), 1.0)

    def test_no_shift_gives_flat_weights(self):
        rng = np.random.default_rng(3)
        source = rng.normal(size=(400, 3))
        target = rng.normal(size=(400, 3))
        weighter = ImportanceWeighter(random_state=0).fit(source, target)
        weights = weighter.weights(source)
        # Without real shift the discriminator only finds noise; the
        # weight spread stays far below the shifted case's.
        assert weights.std() < 1.0
        assert weighter.domain_separability(source, target) < 0.65

    def test_separability_diagnostic(self):
        source, target = shifted_domains(seed=4, shift=5.0)
        weighter = ImportanceWeighter(random_state=0).fit(source, target)
        assert weighter.domain_separability(source, target) > 0.9

    def test_invalid_max_weight(self):
        with pytest.raises(ValueError):
            ImportanceWeighter(max_weight=0.5)


class TestSurrogateTree:
    def _fitted(self, rng=None):
        rng = rng or np.random.default_rng(0)
        X = rng.uniform(0, 100, size=(500, 3))
        model_predictions = (X[:, 0] > 80).astype(int)
        surrogate = SurrogateTree(max_depth=2).fit(
            X, model_predictions, ["C-CPU-U", "mem", "net"]
        )
        return surrogate, X, model_predictions

    def test_high_fidelity_on_simple_model(self):
        surrogate, X, predictions = self._fitted()
        assert surrogate.fidelity(X, predictions) > 0.98

    def test_rules_are_readable_and_correct(self):
        surrogate, _, _ = self._fitted()
        rules = surrogate.rules()
        saturated_rules = [r for r in rules if r.prediction == 1]
        assert saturated_rules
        text = str(saturated_rules[0])
        assert "C-CPU-U >" in text and "saturated" in text

    def test_rule_support_sums_to_one(self):
        surrogate, _, _ = self._fitted()
        assert np.isclose(sum(r.support for r in surrogate.rules()), 1.0)

    def test_depth_restriction_limits_conditions(self):
        surrogate, _, _ = self._fitted()
        assert all(len(r.conditions) <= 2 for r in surrogate.rules())

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            SurrogateTree().rules()


class TestLime:
    def test_explanation_finds_the_driving_feature(self):
        rng = np.random.default_rng(0)
        training = rng.uniform(0, 100, size=(300, 4))
        names = ["cpu", "mem", "net", "noise"]

        def predict_proba(X):
            return 1.0 / (1.0 + np.exp(-(X[:, 0] - 50.0) / 5.0))

        explainer = LimeExplainer(training, names, n_samples=400, random_state=0)
        explanation = explainer.explain(np.array([50.0, 20.0, 30.0, 10.0]),
                                        predict_proba)
        top_feature, top_weight = explanation.top(1)[0]
        assert top_feature == "cpu"
        assert top_weight > 0

    def test_model_prediction_recorded(self):
        rng = np.random.default_rng(1)
        training = rng.normal(size=(100, 2))
        explainer = LimeExplainer(training, ["a", "b"], n_samples=100,
                                  random_state=0)
        explanation = explainer.explain(
            np.zeros(2), lambda X: np.full(len(X), 0.3)
        )
        assert np.isclose(explanation.model_prediction, 0.3)

    def test_dimension_check(self):
        explainer = LimeExplainer(np.zeros((10, 2)), ["a", "b"])
        with pytest.raises(ValueError, match="dimensionality"):
            explainer.explain(np.zeros(3), lambda X: np.zeros(len(X)))


class TestMultiLevelLabeler:
    def _curve(self):
        load = np.linspace(1, 1000, 300)
        kpi = np.minimum(load, 700.0)
        return load, kpi

    def test_three_classes_by_default(self):
        labeler = MultiLevelLabeler()
        assert labeler.n_classes == 3

    def test_graded_labels(self):
        load, kpi = self._curve()
        labeler = MultiLevelLabeler(levels=(0.5,), margin=0.0).fit(load, kpi)
        labels = labeler.label(np.array([100.0, 500.0, 900.0]))
        assert labels.tolist() == [0, 1, 2]

    def test_binary_collapse_matches_kneedle(self):
        load, kpi = self._curve()
        labeler = MultiLevelLabeler(levels=(0.5,)).fit(load, kpi)
        graded = labeler.label(kpi)
        binary = labeler.to_binary(graded)
        assert set(np.unique(binary)) <= {0, 1}
        assert binary.sum() < len(binary)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            MultiLevelLabeler(levels=())
        with pytest.raises(ValueError):
            MultiLevelLabeler(levels=(0.9, 0.5))
        with pytest.raises(ValueError):
            MultiLevelLabeler(levels=(1.5,))


class TestRightsizing:
    def test_overprovisioning_labels(self):
        labels = label_overprovisioning(np.array([0.1, 0.5, 0.29]))
        assert labels.tolist() == [1, 0, 1]

    def test_conflicting_labels_rejected(self):
        model = RightsizingModel()
        with pytest.raises(ValueError, match="conflicting"):
            model.fit(
                np.zeros((2, 2)), [], np.array([1, 0]), np.array([1, 0])
            )

    def test_rightsizer_scale_out_immediate(self):
        sizer = Rightsizer(consecutive_ticks=5)
        recommendation = sizer.recommend(
            "auth", ["scale_out", "scale_in"], current_replicas=2
        )
        assert recommendation.recommended_replicas == 3
        assert recommendation.action == "scale_out"

    def test_rightsizer_scale_in_needs_streak(self):
        sizer = Rightsizer(consecutive_ticks=3)
        for _ in range(2):
            rec = sizer.recommend("auth", ["scale_in", "scale_in"], 2)
            assert rec.action == "hold"
        rec = sizer.recommend("auth", ["scale_in", "scale_in"], 2)
        assert rec.action == "scale_in"
        assert rec.recommended_replicas == 1

    def test_rightsizer_streak_resets_on_hold(self):
        sizer = Rightsizer(consecutive_ticks=2)
        sizer.recommend("auth", ["scale_in", "scale_in"], 2)
        sizer.recommend("auth", ["hold", "scale_in"], 2)  # reset
        rec = sizer.recommend("auth", ["scale_in", "scale_in"], 2)
        assert rec.action == "hold"

    def test_rightsizer_respects_min_replicas(self):
        sizer = Rightsizer(consecutive_ticks=1, min_replicas=1)
        rec = sizer.recommend("auth", ["scale_in"], 1)
        assert rec.recommended_replicas == 1

    def test_recommendation_action_property(self):
        assert Recommendation("s", 2, 3).action == "scale_out"
        assert Recommendation("s", 2, 2).action == "hold"
        assert Recommendation("s", 2, 1).action == "scale_in"


class TestCallGraph:
    def test_teastore_visits_match_service_specs(self):
        graph_visits = teastore_call_graph().visit_counts()
        application = teastore_application()
        for service, spec in application.services.items():
            assert graph_visits[service] == pytest.approx(spec.visits), service

    def test_sockshop_visits_match_service_specs(self):
        graph_visits = sockshop_call_graph().visit_counts()
        for service, profile in SOCKSHOP_PROFILES.items():
            assert graph_visits[service] == pytest.approx(
                profile["visits"]
            ), service

    def test_cycle_rejected(self):
        graph = CallGraph(entry="a")
        graph.add_call("a", "b")
        graph.add_call("b", "a")
        with pytest.raises(ValueError, match="cycle"):
            graph.visit_counts()

    def test_unreachable_rejected(self):
        graph = CallGraph(entry="a")
        graph.add_call("a", "b")
        graph.graph.add_node("orphan")
        with pytest.raises(ValueError, match="unreachable|Unreachable"):
            graph.validate()

    def test_cross_node_traffic_counts_remote_edges_only(self):
        graph = CallGraph(entry="a")
        graph.add_call("a", "b", calls=2.0, request_bytes=100, response_bytes=400)
        graph.add_call("a", "c", calls=1.0, request_bytes=100, response_bytes=400)
        co_located = graph.cross_node_traffic({"a": "n1", "b": "n1", "c": "n1"})
        split = graph.cross_node_traffic({"a": "n1", "b": "n2", "c": "n1"})
        assert co_located == 0.0
        assert split == 2.0 * 500.0

    def test_teastore_cross_node_traffic_under_paper_placement(self):
        graph = teastore_call_graph()
        placement = {
            "recommender": "M1", "auth": "M1", "registry": "M1",
            "db": "M2", "persistence": "M2",
            "webui": "M3", "imageprovider": "M3",
        }
        remote = graph.cross_node_traffic(placement)
        everything_remote = graph.cross_node_traffic(
            {s: f"n{i}" for i, s in enumerate(graph.services())}
        )
        assert 0.0 < remote < everything_remote

    def test_fan_out(self):
        assert teastore_call_graph().fan_out("webui") == 5
        assert sockshop_call_graph().fan_out("front-end") == 4
