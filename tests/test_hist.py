"""Histogram-binned training: binning contract, hist-vs-exact agreement,
determinism across ``n_jobs``, and the exact-mode bitwise fingerprint."""

import hashlib
import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.ml.binning import Binner
from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.gbm import GradientBoostingClassifier
from repro.ml.metrics import f1_score
from repro.ml.tree import DecisionTreeClassifier

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))
FINGERPRINT_PATH = Path(__file__).parent / "data" / "exact_fingerprint.json"


@pytest.fixture(scope="module")
def wide_data():
    """A synthetic corpus wide enough for hist binning to matter."""
    rng = np.random.default_rng(11)
    n, d = 1500, 60
    X = rng.normal(size=(n, d))
    X[:, :10] = np.round(X[:, :10] * 4.0) / 4.0  # low-cardinality block
    logits = X[:, 0] + 0.8 * X[:, 1] * X[:, 2] - 0.5 * np.abs(X[:, 3])
    y = (logits + 0.25 * rng.normal(size=n) > 0).astype(np.int64)
    return X[:1000], y[:1000], X[1000:], y[1000:]


class TestBinner:
    def test_edges_strictly_increasing(self, wide_data):
        X = wide_data[0]
        binner = Binner().fit(X)
        for edges in binner.bin_edges_:
            assert np.all(np.diff(edges) > 0)
            assert np.all(np.isfinite(edges))

    def test_code_threshold_contract(self, wide_data):
        """code(x) <= b must be exactly x <= bin_edges_[f][b]."""
        X = wide_data[0]
        binner = Binner(max_bins=16).fit(X)
        codes = binner.transform(X)
        for f in (0, 5, 30):
            edges = binner.bin_edges_[f]
            for b in range(len(edges)):
                np.testing.assert_array_equal(
                    codes[:, f] <= b, X[:, f] <= edges[b]
                )

    def test_low_cardinality_uses_midpoints(self):
        column = np.array([0.0, 0.0, 1.0, 1.0, 3.0])
        binner = Binner().fit(column[:, None])
        np.testing.assert_allclose(binner.bin_edges_[0], [0.5, 2.0])

    def test_quantile_path_caps_bins(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(5000, 1))
        binner = Binner(max_bins=32).fit(X)
        assert binner.n_bins_[0] <= 32
        assert len(binner.bin_edges_[0]) >= 16  # quantiles spread out

    def test_constant_feature_gets_single_bin(self):
        X = np.column_stack([np.full(10, 7.0), np.arange(10.0)])
        binner = Binner().fit(X)
        assert binner.n_bins_[0] == 1
        assert np.all(binner.transform(X)[:, 0] == 0)

    def test_nan_maps_to_top_bin(self):
        X = np.array([[0.0], [1.0], [2.0], [np.nan]])
        binner = Binner().fit(X)
        codes = binner.transform(X)
        assert codes[3, 0] == len(binner.bin_edges_[0])
        assert codes[3, 0] == codes[:, 0].max()

    def test_infinities_land_in_extreme_bins(self):
        X = np.array([[0.0], [1.0], [2.0]])
        binner = Binner().fit(X)
        codes = binner.transform(np.array([[-np.inf], [np.inf]]))
        assert codes[0, 0] == 0
        assert codes[1, 0] == len(binner.bin_edges_[0])

    def test_quantiles_match_numpy(self):
        rng = np.random.default_rng(3)
        column = rng.normal(size=4000)
        binner = Binner(max_bins=64).fit(column[:, None])
        expected = np.quantile(column, np.linspace(0, 1, 65)[1:-1])
        expected = np.unique(expected)
        expected = expected[expected < column.max()]
        np.testing.assert_allclose(binner.bin_edges_[0], expected)

    def test_pack_unpack_roundtrip(self, wide_data):
        binner = Binner(max_bins=16).fit(wide_data[0])
        values, offsets = binner.pack()
        unpacked = Binner.unpack(values, offsets)
        assert len(unpacked) == len(binner.bin_edges_)
        for original, restored in zip(binner.bin_edges_, unpacked):
            np.testing.assert_array_equal(original, restored)

    def test_max_bins_validation(self):
        with pytest.raises(ValueError, match="max_bins"):
            Binner(max_bins=1)
        with pytest.raises(ValueError, match="max_bins"):
            Binner(max_bins=300)


class TestHistVsExact:
    def test_identical_predictions_on_separable_data(self):
        """Few distinct values -> midpoint edges -> identical trees."""
        rng = np.random.default_rng(5)
        X = rng.integers(0, 8, size=(400, 6)).astype(np.float64)
        y = (X[:, 0] + X[:, 1] >= 8).astype(np.int64)
        exact = DecisionTreeClassifier(random_state=0).fit(X, y)
        hist = DecisionTreeClassifier(
            tree_method="hist", random_state=0
        ).fit(X, y)
        grid = rng.uniform(-1, 9, size=(500, 6))
        np.testing.assert_array_equal(exact.predict(grid), hist.predict(grid))

    def test_tree_f1_close(self, wide_data):
        X_train, y_train, X_test, y_test = wide_data
        params = dict(min_samples_leaf=10, random_state=0)
        exact = DecisionTreeClassifier(**params).fit(X_train, y_train)
        hist = DecisionTreeClassifier(tree_method="hist", **params).fit(
            X_train, y_train
        )
        f1_exact = f1_score(y_test, exact.predict(X_test))
        f1_hist = f1_score(y_test, hist.predict(X_test))
        assert abs(f1_exact - f1_hist) < 0.05

    def test_forest_f1_close(self, wide_data):
        X_train, y_train, X_test, y_test = wide_data
        params = dict(
            n_estimators=30,
            min_samples_leaf=10,
            criterion="entropy",
            random_state=0,
        )
        exact = RandomForestClassifier(**params).fit(X_train, y_train)
        hist = RandomForestClassifier(tree_method="hist", **params).fit(
            X_train, y_train
        )
        f1_exact = f1_score(y_test, exact.predict(X_test))
        f1_hist = f1_score(y_test, hist.predict(X_test))
        assert abs(f1_exact - f1_hist) < 0.03

    def test_hist_predicts_on_raw_features(self, wide_data):
        """Thresholds are reconstructed: raw X in, no re-binning."""
        X_train, y_train, X_test, _ = wide_data
        hist = DecisionTreeClassifier(
            tree_method="hist", max_depth=6, random_state=0
        ).fit(X_train, y_train)
        split_features = hist.tree_feature_[hist.tree_feature_ >= 0]
        assert split_features.size > 0
        proba = hist.predict_proba(X_test)
        assert proba.shape == (X_test.shape[0], 2)

    def test_hist_sample_weight(self, wide_data):
        X_train, y_train, _, _ = wide_data
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.5, 2.0, size=len(y_train))
        tree = DecisionTreeClassifier(
            tree_method="hist", max_depth=5, random_state=0
        ).fit(X_train, y_train, sample_weight=weights)
        assert tree.score(X_train, y_train) > 0.7

    def test_hist_rejects_random_splitter(self):
        with pytest.raises(ValueError, match="random"):
            DecisionTreeClassifier(
                tree_method="hist", splitter="random"
            ).fit(np.zeros((4, 2)), [0, 1, 0, 1])

    def test_invalid_tree_method(self):
        with pytest.raises(ValueError, match="tree_method"):
            DecisionTreeClassifier(tree_method="gpu").fit(
                np.zeros((4, 2)), [0, 1, 0, 1]
            )
        with pytest.raises(ValueError, match="tree_method"):
            RandomForestClassifier(tree_method="gpu").fit(
                np.zeros((4, 2)), [0, 1, 0, 1]
            )
        with pytest.raises(ValueError, match="tree_method"):
            GradientBoostingClassifier(tree_method="gpu").fit(
                np.zeros((4, 2)), [0, 1, 0, 1]
            )


class TestEnsembleHist:
    def test_gbm_hist_close_to_exact(self, wide_data):
        X_train, y_train, X_test, y_test = wide_data
        params = dict(n_estimators=20, max_depth=4, random_state=0)
        exact = GradientBoostingClassifier(**params).fit(X_train, y_train)
        hist = GradientBoostingClassifier(tree_method="hist", **params).fit(
            X_train, y_train
        )
        f1_exact = f1_score(y_test, exact.predict(X_test))
        f1_hist = f1_score(y_test, hist.predict(X_test))
        assert abs(f1_exact - f1_hist) < 0.05

    def test_gbm_hist_subsample(self, wide_data):
        X_train, y_train, X_test, y_test = wide_data
        model = GradientBoostingClassifier(
            n_estimators=15, max_depth=3, subsample=0.7,
            tree_method="hist", random_state=0,
        ).fit(X_train, y_train)
        assert f1_score(y_test, model.predict(X_test)) > 0.6

    def test_adaboost_hist_both_algorithms(self, wide_data):
        X_train, y_train, X_test, y_test = wide_data
        for algorithm in ("SAMME", "SAMME.R"):
            model = AdaBoostClassifier(
                n_estimators=10, algorithm=algorithm,
                DT_tree_method="hist", random_state=0,
            ).fit(X_train, y_train)
            assert f1_score(y_test, model.predict(X_test)) > 0.6


def _tree_digest(tree) -> str:
    digest = hashlib.sha256()
    for array in (
        tree.tree_feature_,
        tree.tree_threshold_,
        tree.tree_left_,
        tree.tree_right_,
        tree.tree_value_,
    ):
        digest.update(np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


def _forest_digest(forest) -> str:
    digest = hashlib.sha256()
    for tree in forest.estimators_:
        digest.update(_tree_digest(tree).encode())
    return digest.hexdigest()


class TestHistDeterminism:
    """Extends the PR-2 contract: hist results are bitwise identical at
    every ``n_jobs`` (binning happens once in the parent)."""

    def test_forest_bitwise_across_n_jobs(self, wide_data):
        X_train, y_train, X_test, _ = wide_data
        forests = [
            RandomForestClassifier(
                n_estimators=8,
                min_samples_leaf=5,
                tree_method="hist",
                random_state=3,
                n_jobs=jobs,
            ).fit(X_train, y_train)
            for jobs in (1, JOBS)
        ]
        assert _forest_digest(forests[0]) == _forest_digest(forests[1])
        np.testing.assert_array_equal(
            forests[0].predict_proba(X_test), forests[1].predict_proba(X_test)
        )

    def test_tree_refit_is_bitwise_stable(self, wide_data):
        X_train, y_train, _, _ = wide_data
        first = DecisionTreeClassifier(
            tree_method="hist", max_features="sqrt", random_state=9
        ).fit(X_train, y_train)
        second = DecisionTreeClassifier(
            tree_method="hist", max_features="sqrt", random_state=9
        ).fit(X_train, y_train)
        assert _tree_digest(first) == _tree_digest(second)


class TestExactFingerprint:
    """Pin default exact-mode output bitwise against the stored digests
    captured from pre-histogram ``main`` (the presort fast path and any
    future refactor must not change a single bit)."""

    @pytest.fixture(scope="class")
    def fingerprint_data(self):
        rng = np.random.default_rng(20260806)
        n, d = 600, 24
        X = rng.normal(size=(n, d))
        X[:, :8] = np.round(X[:, :8] * 2.0) / 2.0  # heavy ties
        logits = (
            X[:, 0] + 0.9 * X[:, 1] * X[:, 2] - 0.6 * np.abs(X[:, 3]) + X[:, 5]
        )
        y = (logits + 0.2 * rng.normal(size=n) > 0).astype(np.int64)
        weights = rng.integers(1, 5, size=n).astype(np.float64) / 2.0
        return X, y, weights

    @pytest.fixture(scope="class")
    def stored(self):
        return json.loads(FINGERPRINT_PATH.read_text())["cases"]

    @pytest.mark.parametrize(
        "case, params, weighted",
        [
            ("tree_default", {"random_state": 0}, False),
            (
                "tree_entropy_depth8_leaf5",
                {
                    "criterion": "entropy",
                    "max_depth": 8,
                    "min_samples_leaf": 5,
                    "random_state": 1,
                },
                False,
            ),
            ("tree_sqrt_features", {"max_features": "sqrt", "random_state": 2}, False),
            ("tree_sample_weight", {"random_state": 3}, True),
            ("tree_balanced", {"class_weight": "balanced", "random_state": 4}, False),
            (
                "tree_min_impurity",
                {"min_impurity_decrease": 0.01, "random_state": 5},
                False,
            ),
        ],
    )
    def test_tree_cases(self, fingerprint_data, stored, case, params, weighted):
        X, y, weights = fingerprint_data
        tree = DecisionTreeClassifier(**params)
        tree.fit(X, y, sample_weight=weights if weighted else None)
        assert _tree_digest(tree) == stored[case], (
            f"exact-mode output changed for {case}; the default tree_method "
            "must stay bitwise identical across releases"
        )

    @pytest.mark.parametrize(
        "case, params",
        [
            (
                "forest_small",
                {"n_estimators": 12, "min_samples_leaf": 4, "random_state": 0},
            ),
            (
                "forest_entropy_leaf20",
                {
                    "n_estimators": 8,
                    "min_samples_leaf": 20,
                    "criterion": "entropy",
                    "random_state": 7,
                },
            ),
        ],
    )
    def test_forest_cases(self, fingerprint_data, stored, case, params):
        X, y, _ = fingerprint_data
        forest = RandomForestClassifier(**params).fit(X, y)
        assert _forest_digest(forest) == stored[case], (
            f"exact-mode output changed for {case}; the default tree_method "
            "must stay bitwise identical across releases"
        )

    @pytest.fixture(scope="class")
    def stored_proba(self):
        return json.loads(FINGERPRINT_PATH.read_text())["proba_cases"]

    @pytest.mark.parametrize(
        "case, params, weighted",
        [
            ("tree_default", {"random_state": 0}, False),
            (
                "tree_entropy_depth8_leaf5",
                {
                    "criterion": "entropy",
                    "max_depth": 8,
                    "min_samples_leaf": 5,
                    "random_state": 1,
                },
                False,
            ),
            ("tree_sqrt_features", {"max_features": "sqrt", "random_state": 2}, False),
            ("tree_sample_weight", {"random_state": 3}, True),
            ("tree_balanced", {"class_weight": "balanced", "random_state": 4}, False),
            (
                "tree_min_impurity",
                {"min_impurity_decrease": 0.01, "random_state": 5},
                False,
            ),
        ],
    )
    def test_tree_proba_cases(
        self, fingerprint_data, stored_proba, case, params, weighted
    ):
        X, y, weights = fingerprint_data
        tree = DecisionTreeClassifier(**params)
        tree.fit(X, y, sample_weight=weights if weighted else None)
        proba = tree.predict_proba(X)
        digest = hashlib.sha256(
            np.ascontiguousarray(proba).tobytes()
        ).hexdigest()
        assert digest == stored_proba[case], (
            f"predict_proba output changed for {case}; the inference path "
            "(flat traversal included) must stay bitwise identical to the "
            "historical per-tree walk"
        )

    @pytest.mark.parametrize(
        "case, params",
        [
            (
                "forest_small",
                {"n_estimators": 12, "min_samples_leaf": 4, "random_state": 0},
            ),
            (
                "forest_entropy_leaf20",
                {
                    "n_estimators": 8,
                    "min_samples_leaf": 20,
                    "criterion": "entropy",
                    "random_state": 7,
                },
            ),
        ],
    )
    def test_forest_proba_cases(self, fingerprint_data, stored_proba, case, params):
        X, y, _ = fingerprint_data
        forest = RandomForestClassifier(**params).fit(X, y)
        proba = forest.predict_proba(X)
        digest = hashlib.sha256(
            np.ascontiguousarray(proba).tobytes()
        ).hexdigest()
        assert digest == stored_proba[case], (
            f"predict_proba output changed for {case}; the inference path "
            "(flat traversal included) must stay bitwise identical to the "
            "historical per-tree walk"
        )
