"""Tests for AdaBoost and the XGBoost-style gradient booster."""

import numpy as np
import pytest

from repro.ml.boosting import AdaBoostClassifier
from repro.ml.gbm import GradientBoostingClassifier
from repro.ml.metrics import accuracy_score


class TestAdaBoost:
    @pytest.mark.parametrize("algorithm", ["SAMME", "SAMME.R"])
    def test_learns_nonlinear_problem(self, algorithm, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        model = AdaBoostClassifier(
            n_estimators=30, algorithm=algorithm, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_boosting_improves_on_stump(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        stump = AdaBoostClassifier(n_estimators=1, random_state=0)
        boosted = AdaBoostClassifier(n_estimators=40, random_state=0)
        stump.fit(X_train, y_train)
        boosted.fit(X_train, y_train)
        assert boosted.score(X_test, y_test) > stump.score(X_test, y_test)

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError, match="algorithm"):
            AdaBoostClassifier(algorithm="SAMME.X").fit(
                np.zeros((4, 1)), [0, 1, 0, 1]
            )

    def test_proba_is_distribution(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        model = AdaBoostClassifier(n_estimators=10, random_state=0)
        model.fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all(proba >= 0)

    def test_dt_parameters_forwarded(self, binary_data):
        X_train, y_train, _, _ = binary_data
        model = AdaBoostClassifier(
            n_estimators=5,
            DT_criterion="entropy",
            DT_min_samples_split=20,
            DT_max_depth=2,
            random_state=0,
        ).fit(X_train, y_train)
        assert all(t.criterion == "entropy" for t in model.estimators_)
        assert all(t.depth_ <= 2 for t in model.estimators_)

    def test_perfectly_separable_stops_early(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = (X.ravel() > 0.5).astype(int)
        model = AdaBoostClassifier(
            n_estimators=50, algorithm="SAMME", random_state=0
        ).fit(X, y)
        assert len(model.estimators_) < 50
        assert model.score(X, y) == 1.0


class TestGradientBoosting:
    def test_learns_nonlinear_problem(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        model = GradientBoostingClassifier(
            n_estimators=40, max_depth=4, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.88

    def test_more_rounds_fit_train_better(self, binary_data):
        X_train, y_train, _, _ = binary_data
        few = GradientBoostingClassifier(n_estimators=3, max_depth=3, random_state=0)
        many = GradientBoostingClassifier(n_estimators=40, max_depth=3, random_state=0)
        few.fit(X_train, y_train)
        many.fit(X_train, y_train)
        assert many.score(X_train, y_train) >= few.score(X_train, y_train)

    def test_min_child_weight_regularizes(self, binary_data):
        X_train, y_train, _, _ = binary_data
        strict = GradientBoostingClassifier(
            n_estimators=5, max_depth=8, min_child_weight=100.0, random_state=0
        ).fit(X_train, y_train)
        loose = GradientBoostingClassifier(
            n_estimators=5, max_depth=8, min_child_weight=0.1, random_state=0
        ).fit(X_train, y_train)
        # A huge min_child_weight must produce shallower effective trees,
        # hence a worse (or equal) training fit.
        assert strict.score(X_train, y_train) <= loose.score(X_train, y_train)

    def test_gamma_prunes_splits(self, binary_data):
        X_train, y_train, _, _ = binary_data
        pruned = GradientBoostingClassifier(
            n_estimators=3, max_depth=6, gamma=1e9, random_state=0
        ).fit(X_train, y_train)
        # With an absurd gamma no split is worth making: every tree is a leaf.
        assert all(len(t.feature) == 1 for t in pruned.trees_)

    def test_probabilities_monotone_in_score(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        model = GradientBoostingClassifier(
            n_estimators=10, max_depth=3, random_state=0
        ).fit(X_train, y_train)
        scores = model.decision_function(X_test)
        proba = model.predict_proba(X_test)[:, 1]
        order = np.argsort(scores)
        assert np.all(np.diff(proba[order]) >= -1e-12)

    def test_requires_binary(self):
        X = np.random.default_rng(0).normal(size=(30, 2))
        y = np.arange(30) % 3
        with pytest.raises(ValueError, match="binary"):
            GradientBoostingClassifier().fit(X, y)

    def test_subsample(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        model = GradientBoostingClassifier(
            n_estimators=20, max_depth=3, subsample=0.5, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8
