"""Tests for the fleet-scale vectorized serving path (`repro.fleet`):
row membership, bitwise telemetry/pipeline parity with the
per-container reference, decision equivalence under clean, dropout and
full-chaos stacks, and per-shard checkpointed crash rescue."""

import numpy as np
import pytest

from repro.fleet.features import FleetPipelineStream
from repro.fleet.membership import FleetIndex, FleetMember
from repro.fleet.orchestrator import (
    FleetOrchestrator,
    FleetShardRunner,
    build_cell,
    default_fleet_workloads,
    make_fleet_specs,
)
from repro.fleet.policy import FleetPolicy
from repro.fleet.telemetry import FleetTelemetryStream
from repro.orchestrator.autoscaler import Autoscaler, ScalingRules
from repro.orchestrator.loop import Orchestrator, OrchestratorResult
from repro.orchestrator.policies import MonitorlessPolicy
from repro.reliability.fallback import FallbackPolicy
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import default_catalog


def _member(namespace="cell-0", pod="teastore.auth.1", service="auth"):
    return FleetMember(
        namespace=namespace, pod=pod, container=service, deployment=service
    )


class TestFleetIndex:
    def test_rollup_key_is_namespace_deployment(self):
        member = _member()
        assert member.rollup_key == ("cell-0", "auth")

    def test_rows_are_assigned_and_reused_smallest_first(self):
        index = FleetIndex()
        rows = [index.add(_member(pod=f"teastore.auth.{i}")) for i in range(4)]
        assert rows == [0, 1, 2, 3]
        index.retire("cell-0", "teastore.auth.1")
        index.retire("cell-0", "teastore.auth.0")
        assert len(index) == 2
        # Retired rows come back smallest-first, deterministically.
        assert index.add(_member(pod="teastore.auth.9")) == 0
        assert index.add(_member(pod="teastore.auth.10")) == 1
        assert index.add(_member(pod="teastore.auth.11")) == 4
        assert index.capacity == 5

    def test_duplicate_and_namespace_scoping(self):
        index = FleetIndex()
        index.add(_member(namespace="a", pod="p"))
        index.add(_member(namespace="b", pod="p"))  # same pod, other cell
        with pytest.raises(ValueError):
            index.add(_member(namespace="a", pod="p"))
        assert index.pods_in("a") == {"p"}
        assert index.member_at(index.row_of("b", "p")).namespace == "b"


class TestFleetPipelineBitwise:
    def test_matches_per_container_streams_row_for_row(self, tiny_model):
        """Staggered rows with NaNs and sub-1.0 completeness produce
        bitwise the same engineered rows as dedicated PipelineStreams."""
        meta = default_catalog().feature_meta()
        n_raw = len(meta)
        fleet = FleetPipelineStream(
            tiny_model.pipeline_, meta, capacity=4, chunk_rows=2
        )
        references = [tiny_model.pipeline_.stream() for _ in range(3)]
        rng = np.random.default_rng(42)
        starts = [0, 0, 5]  # row 2 joins later, mid-run
        for t in range(14):
            rows, raws, completeness = [], [], []
            for row, start in enumerate(starts):
                if t < start:
                    continue
                raw = rng.uniform(0.0, 50.0, n_raw)
                if t % 4 == 1:
                    raw[rng.integers(0, n_raw, 7)] = np.nan
                complete = 0.8 if t % 5 == 2 else 1.0
                rows.append(row)
                raws.append(raw)
                completeness.append(complete)
            fleet.push_rows(
                np.asarray(rows, dtype=np.intp),
                np.asarray(raws),
                np.asarray(completeness),
            )
            for row, raw, complete in zip(rows, raws, completeness):
                expected = references[row].push(raw, imputed=complete < 1.0)
                assert np.array_equal(fleet.features[row], expected), (
                    f"row {row} diverged at tick {t}"
                )
        for row in range(3):
            assert fleet.imputed_ticks[row] == references[row].imputed_ticks
            assert fleet.ticks[row] == references[row].ticks

    def test_reset_rows_restarts_a_series(self, tiny_model):
        meta = default_catalog().feature_meta()
        fleet = FleetPipelineStream(tiny_model.pipeline_, meta, capacity=2)
        rng = np.random.default_rng(7)
        raw = rng.uniform(0.0, 50.0, (1, len(meta)))
        rows = np.asarray([0], dtype=np.intp)
        ones = np.ones(1)
        fleet.push_rows(rows, raw, ones)
        first = fleet.features[0].copy()
        fleet.push_rows(rows, rng.uniform(0.0, 50.0, (1, len(meta))), ones)
        fleet.reset_rows(rows)
        assert not fleet.has_features[0]
        fleet.push_rows(rows, raw, ones)
        assert np.array_equal(fleet.features[0], first)


class TestFleetTelemetryBitwise:
    def test_fast_path_matches_instance_streams(self):
        """Grouped host synthesis equals per-container streams bitwise."""
        spec = make_fleet_specs(1, base_seed=3)[0]
        cell = build_cell(spec)
        agent = cell.agent
        assert type(agent) is TelemetryAgent
        deployment = cell.simulation.deployments[cell.application]
        containers = [
            instance.container
            for replicas in deployment.instances.values()
            for instance in replicas
        ]
        fleet = FleetTelemetryStream(agent.catalog, capacity=len(containers))
        for row, container in enumerate(containers):
            fleet.add_row(
                row, spec.namespace, agent, container, cell.simulation.nodes
            )
        references = [
            agent.open_stream(container, cell.simulation.nodes)
            for container in containers
        ]
        for t in range(8):
            cell.simulation.step({cell.application: 40.0})
            fleet.begin_tick()
            emitted = fleet.advance_round()
            assert emitted.tolist() == list(range(len(containers)))
            assert fleet.advance_round().size == 0  # caught up
            for row, stream in enumerate(references):
                assert np.array_equal(fleet.raw[row], stream.emit()), (
                    f"row {row} diverged at tick {t}"
                )
        assert np.all(fleet.completeness[: len(containers)] == 1.0)


def _drive_reference_cell(spec, model, workload, *, use_fallback=False,
                          recovery_ticks=2, autoscaler=None):
    """Per-container reference loop for one cell; returns per-tick
    saturated sets, extras, and the policy object."""
    cell = build_cell(spec)
    if autoscaler is not None:
        cell.autoscaler = autoscaler(cell)
    primary = MonitorlessPolicy(model, cell.agent, window=16, streaming=True)
    if use_fallback:
        policy = FallbackPolicy(
            primary, cell.secondary, recovery_ticks=recovery_ticks
        )
    else:
        policy = primary
    decisions, extras = [], []
    for t in range(len(workload)):
        cell.simulation.step({cell.application: float(workload[t])})
        saturated = policy.saturated_services(
            cell.simulation, cell.application, t
        )
        cell.autoscaler.act(saturated, t)
        decisions.append(set(saturated))
        extras.append(cell.autoscaler.extra_replicas)
    return decisions, extras, policy, cell


class TestFleetEquivalence:
    def _assert_decisions_match(self, fleet_result, specs, per_cell):
        ticks = len(fleet_result.decisions)
        for t in range(ticks):
            want = {
                (spec.namespace, service)
                for spec in specs
                for service in per_cell[spec.namespace][t]
            }
            assert set(fleet_result.decisions[t]) == want, f"tick {t}"

    def test_clean_cells_match_reference_decisions(self, tiny_model):
        ticks = 45
        specs = make_fleet_specs(3, base_seed=0, kind="teastore")
        workloads = default_fleet_workloads(3, ticks, seed=0)
        runner = FleetShardRunner(0, specs, tiny_model)
        runner.start()
        for t in range(ticks):
            runner.tick(workloads[:, t])
        fleet = runner.finish()

        per_cell = {}
        for row, spec in enumerate(specs):
            decisions, extras, _, _ = _drive_reference_cell(
                spec, tiny_model, workloads[row]
            )
            per_cell[spec.namespace] = decisions
            assert np.array_equal(
                fleet.cells[spec.namespace].extra_replicas,
                np.asarray(extras, dtype=np.float64),
            )
        self._assert_decisions_match(fleet, specs, per_cell)
        # The run must actually exercise the loop: some saturation
        # decisions and some scale-outs.
        assert sum(len(d) for d in fleet.decisions) > 0
        assert fleet.cells[specs[0].namespace].total_scale_outs > 0

    def test_dropout_cells_match_reference_decisions(self, tiny_model):
        ticks = 40
        specs = make_fleet_specs(2, base_seed=0, kind="teastore-dropout")
        workloads = default_fleet_workloads(2, ticks, seed=0)
        runner = FleetShardRunner(0, specs, tiny_model)
        runner.start()
        for t in range(ticks):
            runner.tick(workloads[:, t])
        fleet = runner.finish()
        per_cell = {}
        for row, spec in enumerate(specs):
            decisions, extras, _, _ = _drive_reference_cell(
                spec, tiny_model, workloads[row]
            )
            per_cell[spec.namespace] = decisions
            assert np.array_equal(
                fleet.cells[spec.namespace].extra_replicas,
                np.asarray(extras, dtype=np.float64),
            )
        self._assert_decisions_match(fleet, specs, per_cell)

    def test_chaos_cells_match_fallback_chain(self, tiny_model):
        """Full chaos stack: decisions, health states and fallback
        counters all equal the per-container FallbackPolicy chain."""
        ticks = 40
        specs = make_fleet_specs(2, base_seed=0, kind="teastore-chaos")
        workloads = default_fleet_workloads(2, ticks, seed=0)
        runner = FleetShardRunner(
            0, specs, tiny_model, policy_options={"recovery_ticks": 2}
        )
        runner.start()
        for t in range(ticks):
            runner.tick(workloads[:, t])
        fleet = runner.finish()

        per_cell, ref_health = {}, {}
        ref_counters = dict.fromkeys(
            ("demotions", "recoveries", "failsafe_entries", "failsafe_ticks"),
            0,
        )
        for row, spec in enumerate(specs):
            decisions, extras, policy, _ = _drive_reference_cell(
                spec, tiny_model, workloads[row], use_fallback=True
            )
            per_cell[spec.namespace] = decisions
            assert np.array_equal(
                fleet.cells[spec.namespace].extra_replicas,
                np.asarray(extras, dtype=np.float64),
            )
            for pod, state in policy.health.items():
                ref_health[(spec.namespace, pod)] = state
            for key in ref_counters:
                ref_counters[key] += getattr(policy, key)
        self._assert_decisions_match(fleet, specs, per_cell)
        assert fleet.health == ref_health
        assert {k: fleet.counters[k] for k in ref_counters} == ref_counters
        # Chaos must actually demote something or the parity is vacuous.
        assert fleet.counters["demotions"] > 0

    def test_scale_in_retires_and_reuses_rows(self, tiny_model):
        """Short replica lifespans force scale-in mid-run; fleet rows
        are retired/reused and decisions still match the reference."""
        ticks = 50

        def short_rules():
            base = build_cell(make_fleet_specs(1)[0]).autoscaler.rules
            return ScalingRules(
                placements=base.placements,
                replica_lifespan=8,
                scale_groups=base.scale_groups,
            )

        spec = make_fleet_specs(1, base_seed=1, kind="teastore")[0]
        workload = default_fleet_workloads(1, ticks, seed=1)[0]

        cell = build_cell(spec)
        cell.autoscaler = Autoscaler(
            simulation=cell.simulation, application=cell.application,
            rules=short_rules(),
        )
        policy = FleetPolicy(tiny_model)
        policy.add_cell(
            spec.namespace, cell.simulation, cell.application, cell.agent
        )
        fleet_decisions = []
        for t in range(ticks):
            cell.simulation.step({cell.application: float(workload[t])})
            saturated = policy.saturated_services(t)
            cell.autoscaler.act(
                {s for ns, s in saturated if ns == spec.namespace}, t
            )
            fleet_decisions.append(saturated)

        ref_decisions, _, _, ref_cell = _drive_reference_cell(
            spec, tiny_model, workload,
            autoscaler=lambda c: Autoscaler(
                simulation=c.simulation, application=c.application,
                rules=short_rules(),
            ),
        )
        for t in range(ticks):
            want = {(spec.namespace, s) for s in ref_decisions[t]}
            assert fleet_decisions[t] == want, f"tick {t}"
        # Scale-in actually happened and freed matrix rows for reuse:
        # without reuse, capacity would equal the 7 baseline containers
        # plus every scale-out replica ever added.
        assert cell.autoscaler.total_scale_outs > 1
        assert policy.index.capacity < 7 + cell.autoscaler.total_scale_outs


class TestFleetKillResume:
    def test_worker_loss_midrun_is_bitwise_rescued(self, tiny_model,
                                                   tmp_path):
        """Kill shard 0's worker at tick 20; the parent rescue resumes
        from the tick-16 checkpoint and the fleet result is bitwise
        identical to an uninterrupted run."""
        ticks = 35
        specs = make_fleet_specs(4, base_seed=0, kind="teastore")
        workloads = default_fleet_workloads(4, ticks, seed=0)
        clean = FleetOrchestrator(
            specs, tiny_model, n_shards=2, n_jobs=2
        ).run(workloads)
        # A not-yet-existing nested directory must be created on run().
        crashed = FleetOrchestrator(
            specs, tiny_model, n_shards=2, n_jobs=2,
            checkpoint_dir=tmp_path / "nested" / "checkpoints",
            checkpoint_interval=8,
            die_at_tick={0: 20},
        ).run(workloads)
        # The crash really happened: shard 0 was resumed from its last
        # checkpoint before the kill tick.
        assert crashed.shard_results[0].resumed_from_tick == 16
        assert crashed.decisions == clean.decisions
        for namespace in clean.cells:
            for attribute in ("extra_replicas", "violations",
                              "response_time", "throughput"):
                assert np.array_equal(
                    getattr(clean.cells[namespace], attribute),
                    getattr(crashed.cells[namespace], attribute),
                ), f"{namespace}.{attribute}"
            assert (
                clean.cells[namespace].total_scale_outs
                == crashed.cells[namespace].total_scale_outs
            )

    def test_sharding_is_invariant_under_n_jobs_and_n_shards(
        self, tiny_model
    ):
        """PR 2's determinism contract extends to the fleet: decisions
        are identical for serial, 2-shard and 4-shard runs."""
        ticks = 25
        specs = make_fleet_specs(4, base_seed=0, kind="teastore")
        workloads = default_fleet_workloads(4, ticks, seed=0)
        serial = FleetOrchestrator(
            specs, tiny_model, n_shards=1, n_jobs=None
        ).run(workloads)
        two = FleetOrchestrator(
            specs, tiny_model, n_shards=2, n_jobs=2
        ).run(workloads)
        four = FleetOrchestrator(
            specs, tiny_model, n_shards=4, n_jobs=2
        ).run(workloads)
        assert serial.decisions == two.decisions == four.decisions
        for namespace in serial.cells:
            assert np.array_equal(
                serial.cells[namespace].extra_replicas,
                two.cells[namespace].extra_replicas,
            )
            assert np.array_equal(
                serial.cells[namespace].extra_replicas,
                four.cells[namespace].extra_replicas,
            )


class TestOrchestratorGuards:
    """Satellite fixes in the per-container Orchestrator."""

    def test_run_with_empty_workloads_has_its_own_error(self):
        spec = make_fleet_specs(1)[0]
        cell = build_cell(spec)
        orchestrator = Orchestrator(
            cell.simulation, cell.application,
            MonitorlessPolicyStub(), rules=None,
        )
        with pytest.raises(ValueError, match="at least one workload"):
            orchestrator.run({})

    def test_average_provisioning_guards_zero_baseline(self):
        def result(extra, baseline):
            return OrchestratorResult(
                policy_name="stub", duration=len(extra),
                baseline_containers=baseline,
                extra_replicas=np.asarray(extra, dtype=np.float64),
                violations=np.zeros(len(extra)),
                response_time=np.zeros(len(extra)),
                throughput=np.zeros(len(extra)),
                offered=np.zeros(len(extra)),
                dropped=np.zeros(len(extra)),
                total_scale_outs=0,
            )

        assert result([0.0, 0.0], 0).average_provisioning == 0.0
        assert result([], 0).average_provisioning == 0.0
        assert result([2.0], 0).average_provisioning == float("inf")
        assert result([2.0, 2.0], 4).average_provisioning == 0.5


class MonitorlessPolicyStub:
    name = "stub"

    def saturated_services(self, simulation, application, t):
        return set()
