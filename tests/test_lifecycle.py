"""Model lifecycle: drift detection, registry, shadow serving, scenario."""

from __future__ import annotations

import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.lifecycle import (
    DriftDetector,
    DriftScenarioConfig,
    DriftScenarioRunner,
    LifecycleManager,
    ModelPerformanceTracker,
    ModelRegistry,
    RegistryError,
    RetrainConfig,
    Retrainer,
    ShadowEvaluator,
    StreamingHistograms,
    StreamWindow,
    antagonist_active,
    batch_ks,
    batch_psi,
    bin_counts,
    bin_rows,
    psi_from_counts,
    quantile_edges,
    scenario_workload,
)


# ----------------------------------------------------------------------
# Histogram primitives
# ----------------------------------------------------------------------
class TestDriftPrimitives:
    def test_zero_variance_feature_is_psi_neutral(self):
        """A constant feature bins identically on both sides -> PSI and
        KS exactly 0, never epsilon noise."""
        reference = np.column_stack(
            [np.full(200, 3.7), np.linspace(0.0, 1.0, 200)]
        )
        live = np.column_stack([np.full(80, 3.7), np.linspace(0.0, 1.0, 80)])
        psi = batch_psi(reference, live, n_bins=10)
        ks = batch_ks(reference, live, n_bins=10)
        assert psi[0] == 0.0
        assert ks[0] == 0.0

    def test_identical_sample_gives_zero(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(size=(300, 5))
        assert np.allclose(batch_psi(sample, sample), 0.0)
        assert np.allclose(batch_ks(sample, sample), 0.0)

    def test_mean_shift_is_flagged(self):
        rng = np.random.default_rng(1)
        reference = rng.normal(size=(400, 3))
        live = rng.normal(size=(400, 3)) + np.array([0.0, 0.0, 3.0])
        psi = batch_psi(reference, live)
        assert psi[2] > 1.0
        assert psi[0] < 0.2 and psi[1] < 0.2

    def test_empty_side_contributes_no_evidence(self):
        counts = np.array([[10, 20, 30]])
        zeros = np.zeros_like(counts)
        assert np.array_equal(psi_from_counts(counts, zeros), [0.0])
        assert np.array_equal(psi_from_counts(zeros, counts), [0.0])

    def test_quantile_edges_validation(self):
        with pytest.raises(ValueError, match="non-empty"):
            quantile_edges(np.empty((0, 3)), 10)
        with pytest.raises(ValueError, match="n_bins"):
            quantile_edges(np.ones((5, 2)), 1)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_ref=st.integers(12, 60),
        n_live=st.integers(1, 80),
        n_features=st.integers(1, 6),
        n_bins=st.integers(2, 12),
    )
    def test_streaming_equals_batch(
        self, seed, n_ref, n_live, n_features, n_bins
    ):
        """Row-at-a-time streaming histograms reproduce the one-shot
        batch PSI/KS bitwise (same edges, same counts)."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(n_ref, n_features))
        live = rng.normal(loc=0.5, size=(n_live, n_features))
        edges = quantile_edges(reference, n_bins)
        streaming = StreamingHistograms(edges, window=n_live)
        for row in live:
            streaming.push(row)
        batch_counts = bin_counts(bin_rows(live, edges), n_features, n_bins)
        assert np.array_equal(streaming.counts, batch_counts)
        ref_counts = bin_counts(
            bin_rows(reference, edges), n_features, n_bins
        )
        assert np.array_equal(
            psi_from_counts(ref_counts, streaming.counts),
            batch_psi(reference, live, n_bins),
        )

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        window=st.integers(1, 20),
        n_rows=st.integers(1, 60),
    )
    def test_eviction_keeps_exact_tail_window(self, seed, window, n_rows):
        """After arbitrary eviction the counts equal the histogram of
        exactly the last ``window`` rows."""
        rng = np.random.default_rng(seed)
        reference = rng.normal(size=(30, 3))
        rows = rng.normal(size=(n_rows, 3))
        edges = quantile_edges(reference, 5)
        streaming = StreamingHistograms(edges, window=window)
        for row in rows:
            streaming.push(row)
        tail = rows[-window:]
        assert len(streaming) == min(n_rows, window)
        assert np.array_equal(
            streaming.counts, bin_counts(bin_rows(tail, edges), 3, 5)
        )


# ----------------------------------------------------------------------
# DriftDetector
# ----------------------------------------------------------------------
def _detector(**overrides):
    kwargs = dict(
        n_bins=5,
        window=40,
        reference_rows=40,
        min_rows=10,
        min_features=1,
        patience=2,
    )
    kwargs.update(overrides)
    return DriftDetector(**kwargs)


class TestDriftDetector:
    def test_reference_collects_from_stream(self):
        rng = np.random.default_rng(0)
        detector = _detector()
        for _ in range(3):
            assert not detector.fitted
            detector.update(rng.normal(size=(15, 4)))
        assert detector.fitted

    def test_never_alarms_before_reference_or_min_rows(self):
        detector = _detector()
        status = detector.check()
        assert not status.drifted and status.n_rows == 0
        rng = np.random.default_rng(1)
        detector.update(rng.normal(size=(40, 4)))  # freezes reference
        detector.update(rng.normal(loc=9.0, size=(5, 4)))  # < min_rows
        status = detector.check()
        assert not status.drifted
        assert status.n_rows == 5

    def test_patience_gates_the_alarm(self):
        rng = np.random.default_rng(2)
        detector = _detector()
        detector.update(rng.normal(size=(40, 4)))
        detector.update(rng.normal(loc=9.0, size=(20, 4)))
        first = detector.check()
        assert not first.drifted and first.consecutive == 1
        second = detector.check()
        assert second.drifted and second.consecutive == 2
        assert second.features_shifted >= 1
        assert second.psi_max > 0.25

    def test_all_imputed_rows_never_alarm(self):
        """A chaos blackout (completeness < 1 everywhere) adds no
        evidence: the live window stays empty and the alarm off."""
        rng = np.random.default_rng(3)
        detector = _detector()
        detector.update(rng.normal(size=(40, 4)))
        shifted = rng.normal(loc=9.0, size=(30, 4))
        detector.update(shifted, completeness=np.zeros(30))
        assert detector.rows_skipped == 30
        assert len(detector.live) == 0
        for _ in range(5):
            assert not detector.check().drifted

    def test_partial_completeness_keeps_clean_rows_only(self):
        rng = np.random.default_rng(4)
        detector = _detector()
        detector.update(rng.normal(size=(40, 4)))
        rows = rng.normal(size=(10, 4))
        completeness = np.array([1.0] * 4 + [0.5] * 6)
        detector.update(rows, completeness=completeness)
        assert len(detector.live) == 4
        assert detector.rows_skipped == 6

    def test_completeness_length_mismatch_raises(self):
        detector = _detector()
        with pytest.raises(ValueError, match="completeness"):
            detector.update(np.ones((3, 4)), completeness=np.ones(2))

    def test_reset_reference_recollects(self):
        rng = np.random.default_rng(5)
        detector = _detector()
        detector.update(rng.normal(size=(40, 4)))
        assert detector.fitted
        detector.reset_reference()
        assert not detector.fitted and detector.live is None
        detector.update(rng.normal(loc=9.0, size=(40, 4)))
        assert detector.fitted  # new baseline is the shifted regime
        detector.update(rng.normal(loc=9.0, size=(15, 4)))
        assert not detector.check().drifted

    def test_single_row_window(self):
        rng = np.random.default_rng(6)
        detector = _detector(window=1, min_rows=1, patience=1)
        detector.update(rng.normal(size=(40, 2)))
        detector.update(np.array([[99.0, 99.0]]))
        assert detector.check().drifted


# ----------------------------------------------------------------------
# Tracker / shadow evaluator
# ----------------------------------------------------------------------
class TestTracker:
    def test_insufficient_evidence_counts_as_healthy(self):
        tracker = ModelPerformanceTracker(window=10, min_resolved=5)
        for t in range(4):
            tracker.record(t, True)
            tracker.resolve(t, False)
        assert tracker.agreement() is None
        assert tracker.healthy()

    def test_agreement_collapse_flips_health(self):
        tracker = ModelPerformanceTracker(
            window=10, min_agreement=0.6, min_resolved=5
        )
        for t in range(10):
            tracker.record(t, True)
            tracker.resolve(t, t % 2 == 0)
        assert tracker.agreement() == 0.5
        assert not tracker.healthy()

    def test_unknown_tick_resolves_to_none(self):
        tracker = ModelPerformanceTracker()
        assert tracker.resolve(99, True) is None

    def test_reset_clears_window(self):
        tracker = ModelPerformanceTracker(min_resolved=1)
        tracker.record(0, True)
        tracker.resolve(0, True)
        tracker.reset()
        assert tracker.agreement() is None
        assert tracker.pending_count == 0


class TestShadowEvaluator:
    def test_bool_predictions_score_exact_accuracy(self):
        evaluator = ShadowEvaluator(window=4, wins_required=1)
        for t, outcome in enumerate([True, True, False, False]):
            result = evaluator.resolve(t, True, outcome, outcome)
        assert result is not None
        assert result.champion_accuracy == 0.5
        assert result.challenger_accuracy == 1.0
        assert result.challenger_won

    def test_fraction_predictions_score_per_row(self):
        """A flagged fraction scores each row against the outcome:
        fraction when the SLO broke, 1 - fraction when it held."""
        evaluator = ShadowEvaluator(window=2, wins_required=1)
        evaluator.resolve(0, 0.25, 1.0, True)
        result = evaluator.resolve(1, 0.25, 0.0, False)
        assert result.champion_accuracy == pytest.approx((0.25 + 0.75) / 2)
        assert result.challenger_accuracy == 1.0

    def test_ties_go_to_the_champion(self):
        evaluator = ShadowEvaluator(window=2, wins_required=1, min_margin=0.0)
        evaluator.resolve(0, True, True, True)
        result = evaluator.resolve(1, True, True, True)
        assert not result.challenger_won
        assert not evaluator.should_promote

    def test_min_margin_hysteresis(self):
        evaluator = ShadowEvaluator(window=2, wins_required=1, min_margin=0.3)
        evaluator.resolve(0, False, True, True)
        result = evaluator.resolve(1, True, True, True)  # 0.5 vs 1.0
        assert result.challenger_won
        evaluator.reset()
        evaluator.resolve(0, False, True, True)
        result = evaluator.resolve(1, True, False, True)  # 0.5 vs 0.5
        assert not result.challenger_won

    def test_win_streak_must_be_consecutive(self):
        evaluator = ShadowEvaluator(window=1, wins_required=2)
        evaluator.resolve(0, False, True, True)  # win
        assert not evaluator.should_promote
        evaluator.resolve(1, True, False, True)  # loss resets streak
        evaluator.resolve(2, False, True, True)  # win
        assert not evaluator.should_promote
        evaluator.resolve(3, False, True, True)  # second consecutive win
        assert evaluator.should_promote
        assert evaluator.windows_completed == 4


# ----------------------------------------------------------------------
# Stream window / retrainer
# ----------------------------------------------------------------------
class TestStreamWindow:
    def test_labeled_skips_unknown_ticks(self):
        stream = StreamWindow(capacity=10)
        stream.push(0, np.ones((2, 3)))
        stream.push(1, np.full((3, 3), 2.0))
        X, y = stream.labeled({1: True})
        assert X.shape == (3, 3)
        assert y.tolist() == [1, 1, 1]

    def test_capacity_evicts_oldest_tick(self):
        stream = StreamWindow(capacity=2)
        for t in range(5):
            stream.push(t, np.full((1, 2), float(t)))
        X, y = stream.labeled({t: False for t in range(5)})
        assert X[:, 0].tolist() == [3.0, 4.0]

    def test_empty_window_labels_to_empty(self):
        stream = StreamWindow(capacity=4)
        X, y = stream.labeled({0: True})
        assert X.shape[0] == 0 and y.shape[0] == 0


class TestRetrainer:
    def _stream(self, model, rng, positives=30, negatives=30):
        width = model.n_engineered_features_
        stream = StreamWindow(capacity=100)
        outcomes = {}
        for t in range(positives):
            stream.push(t, rng.normal(loc=4.0, size=(1, width)))
            outcomes[t] = True
        for t in range(positives, positives + negatives):
            stream.push(t, rng.normal(size=(1, width)))
            outcomes[t] = False
        return stream, outcomes

    def test_insufficient_rows_returns_none(self, tiny_model):
        rng = np.random.default_rng(0)
        retrainer = Retrainer(RetrainConfig(min_rows=1000))
        stream, outcomes = self._stream(tiny_model, rng)
        assert retrainer.retrain(tiny_model, stream, outcomes) is None

    def test_single_class_evidence_returns_none(self, tiny_model):
        rng = np.random.default_rng(1)
        retrainer = Retrainer(RetrainConfig(min_rows=10))
        stream, outcomes = self._stream(tiny_model, rng, positives=0)
        assert retrainer.retrain(tiny_model, stream, outcomes) is None

    def test_challenger_shares_frozen_pipeline(self, tiny_model):
        rng = np.random.default_rng(2)
        retrainer = Retrainer(RetrainConfig(min_rows=10))
        stream, outcomes = self._stream(tiny_model, rng)
        challenger, info = retrainer.retrain(tiny_model, stream, outcomes)
        assert challenger.pipeline_ is tiny_model.pipeline_
        assert challenger.classifier_ is not tiny_model.classifier_
        assert info["stream_rows"] == 60 and info["corpus_rows"] == 0
        assert 0.0 < info["positive_fraction"] < 1.0
        assert len(info["corpus_fingerprint"]) == 64


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestModelRegistry:
    def test_register_transition_and_reload(self, tiny_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        record = registry.register(
            tiny_model, reason="bootstrap", stage="champion"
        )
        assert record["version"] == 1
        assert (tmp_path / "v1.model").exists()

        clone = pickle.loads(pickle.dumps(tiny_model))
        clone.prediction_threshold = 0.55  # different fingerprint
        challenger = registry.register(
            clone, reason="retrain@5:drift", tick=5, parent_version=1
        )
        assert challenger["version"] == 2
        registry.transition(2, "shadow", tick=5, reason="drift")
        registry.transition(2, "champion", tick=9, reason="shadow-win")

        # Promotion auto-retired the previous champion.
        reloaded = ModelRegistry(tmp_path)
        stages = {r["version"]: r["stage"] for r in reloaded.lineage()}
        assert stages == {1: "retired", 2: "champion"}
        assert reloaded.champion()["version"] == 2
        assert any(
            e["version"] == 1 and "superseded by v2" in e["reason"]
            for e in reloaded.events
        )

    def test_register_is_idempotent(self, tiny_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        first = registry.register(tiny_model, reason="bootstrap")
        again = registry.register(tiny_model, reason="bootstrap")
        assert again["version"] == first["version"]
        assert len(registry) == 1

    def test_transition_replay_is_noop(self, tiny_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register(tiny_model, reason="bootstrap")
        registry.transition(1, "shadow", tick=2)
        events = registry.events
        registry.transition(1, "shadow", tick=2)
        assert registry.events == events

    def test_illegal_transition_raises(self, tiny_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register(tiny_model, reason="bootstrap")
        with pytest.raises(RegistryError, match="Illegal transition"):
            registry.transition(1, "champion")  # candidate -> champion
        with pytest.raises(RegistryError, match="No version 7"):
            registry.transition(7, "shadow")
        with pytest.raises(RegistryError, match="Unknown stage"):
            registry.register(tiny_model, reason="x", stage="zombie")

    def test_load_roundtrip_verifies_fingerprint(self, tiny_model, tmp_path):
        registry = ModelRegistry(tmp_path)
        registry.register(tiny_model, reason="bootstrap")
        loaded = registry.load(1)
        assert loaded.n_engineered_features_ == tiny_model.n_engineered_features_


# ----------------------------------------------------------------------
# Manager (no simulation)
# ----------------------------------------------------------------------
class TestLifecycleManager:
    def test_bootstrap_registers_champion(self, tiny_model, tmp_path):
        manager = LifecycleManager(tiny_model, registry=tmp_path)
        assert manager.champion_version == 1
        assert manager.registry.champion()["reason"] == "bootstrap"
        assert manager.challenger is None

    def test_empty_batch_is_ignored(self, tiny_model, tmp_path):
        manager = LifecycleManager(tiny_model, registry=tmp_path)
        width = tiny_model.n_engineered_features_
        assert manager.observe(0, np.empty((0, width)), []) is None
        assert manager._pending == {}

    def test_outcomes_resolve_after_label_delay(self, tiny_model, tmp_path):
        manager = LifecycleManager(
            tiny_model, registry=tmp_path, label_delay=2
        )
        manager.tracker.min_resolved = 1
        width = tiny_model.n_engineered_features_
        rows = np.zeros((3, width))
        manager.observe(0, rows, [True, False, False])
        manager.outcome(0, True)
        manager.step(0)
        manager.step(1)
        assert manager.tracker.agreement() is None  # not matured yet
        manager.step(2)
        assert manager.tracker.agreement() == 1.0

    def test_imputed_rows_stay_out_of_stream(self, tiny_model, tmp_path):
        manager = LifecycleManager(
            tiny_model,
            registry=tmp_path,
            detector=_detector(),
            retrainer=Retrainer(RetrainConfig(min_rows=10)),
        )
        width = tiny_model.n_engineered_features_
        rows = np.ones((4, width))
        manager.observe(0, rows, [False] * 4, completeness=np.zeros(4))
        assert len(manager.stream) == 0
        assert manager.detector.rows_skipped == 4
        manager.observe(1, rows, [False] * 4, completeness=np.ones(4))
        assert manager.stream.row_count == 4


# ----------------------------------------------------------------------
# Policy wiring satellites
# ----------------------------------------------------------------------
class TestPolicyWiring:
    def test_monitorless_policy_defaults_to_no_lifecycle(self, tiny_model):
        from repro.orchestrator.policies import MonitorlessPolicy
        from repro.telemetry.agent import TelemetryAgent

        policy = MonitorlessPolicy(
            tiny_model, TelemetryAgent(seed=0), streaming=True
        )
        assert policy.lifecycle is None

    def test_fleet_phase_shape_unchanged_without_lifecycle(self, tiny_model):
        from repro.fleet.policy import FleetPolicy

        assert "shadow" not in FleetPolicy(tiny_model).phase_seconds
        registry = ModelRegistry.__new__(ModelRegistry)  # placeholder
        manager = object.__new__(LifecycleManager)
        with_lifecycle = FleetPolicy(tiny_model, lifecycle=manager)
        assert with_lifecycle.phase_seconds["shadow"] == 0.0

    def test_fallback_records_typed_classifier_error(
        self, tiny_model, monkeypatch
    ):
        from tests.test_reliability import _drive, _fallback_setup

        simulation, policy = _fallback_setup(tiny_model, [])
        _drive(simulation, policy, 3)

        def explode(*args, **kwargs):
            raise ValueError("classifier down")

        monkeypatch.setattr(policy.primary, "_classify", explode)
        obs.reset()
        obs.enable()
        try:
            simulation.step({"teastore": 30.0})
            policy.saturated_services(simulation, "teastore", 3)
            counters = obs.snapshot()["counters"]
        finally:
            obs.disable()
            obs.reset()
        assert counters["fallback.classifier_errors"] >= 1
        assert counters["fallback.classifier_error{type=ValueError}"] >= 1
        assert policy.last_classifier_error == "ValueError"


# ----------------------------------------------------------------------
# Checkpoint model-fingerprint guard (satellite)
# ----------------------------------------------------------------------
class TestResumeFingerprint:
    @pytest.fixture()
    def checkpoint(self, tiny_model, tmp_path):
        config = DriftScenarioConfig(duration=40, antagonist=None)
        runner = DriftScenarioRunner(
            tiny_model, tmp_path / "registry", config
        )
        path = tmp_path / "scenario.ckpt"
        runner.run_until(6, checkpoint_path=path, checkpoint_interval=3)
        return path

    def test_same_model_resumes(self, tiny_model, checkpoint):
        from repro.orchestrator.loop import Orchestrator

        resumed = Orchestrator.resume_from(checkpoint, model=tiny_model)
        assert resumed._t == 6

    def test_different_model_is_refused(self, tiny_model, checkpoint):
        from repro.orchestrator.loop import Orchestrator
        from repro.reliability.checkpoint import CheckpointError

        other = pickle.loads(pickle.dumps(tiny_model))
        other.prediction_threshold = 0.55
        with pytest.raises(CheckpointError, match="refusing to swap"):
            Orchestrator.resume_from(checkpoint, model=other)

    def test_allow_model_swap_overrides(self, tiny_model, checkpoint):
        from repro.orchestrator.loop import Orchestrator

        other = pickle.loads(pickle.dumps(tiny_model))
        other.prediction_threshold = 0.55
        resumed = Orchestrator.resume_from(
            checkpoint, model=other, allow_model_swap=True
        )
        assert resumed.policy.model is other


# ----------------------------------------------------------------------
# The end-to-end drift scenario (slow; the PR's acceptance path)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def scenario_result(tiny_model, tmp_path_factory):
    from repro.lifecycle import run_drift_scenario

    registry_dir = tmp_path_factory.mktemp("registry-fresh")
    return run_drift_scenario(tiny_model, registry_dir)


class TestDriftScenario:
    def test_workload_steps_at_onset(self):
        config = DriftScenarioConfig(duration=100, workload_rate=50.0)
        workload = scenario_workload(config)
        assert workload[: config.onset_tick].tolist() == [50.0] * 45
        assert np.allclose(workload[config.onset_tick :], 60.0)
        assert not antagonist_active(config, config.onset_tick - 1)
        assert antagonist_active(config, config.onset_tick)
        off = config.onset_tick + int(
            config.antagonist_duty * config.antagonist_period
        )
        assert not antagonist_active(config, off)

    def test_detects_retrains_and_promotes(self, scenario_result):
        result = scenario_result
        onset = result.onset_tick
        assert result.detection_tick is not None
        # Detection within the configured window after the onset: the
        # live window holds ~2 antagonist periods of rows.
        assert onset <= result.detection_tick <= onset + 2 * 40
        assert result.retrain_tick >= result.detection_tick
        assert result.promoted
        assert result.promotion_tick > result.retrain_tick
        assert result.champion_version == 2

    def test_registry_end_state(self, scenario_result):
        stages = {
            record["version"]: record["stage"]
            for record in scenario_result.lineage
        }
        assert stages[1] == "retired"
        assert stages[2] == "champion"
        parents = {
            record["version"]: record["parent_version"]
            for record in scenario_result.lineage
        }
        assert parents[2] == 1

    def test_promotion_history_reproduces_across_n_jobs(
        self, tiny_model, scenario_result, tmp_path
    ):
        from repro.lifecycle import run_drift_scenario

        config = DriftScenarioConfig(n_jobs=2)
        parallel = run_drift_scenario(tiny_model, tmp_path, config)
        assert json.dumps(
            parallel.promotion_history(), sort_keys=True
        ) == json.dumps(scenario_result.promotion_history(), sort_keys=True)

    def test_promotion_history_reproduces_across_kill_and_resume(
        self, tiny_model, scenario_result, tmp_path
    ):
        config = DriftScenarioConfig()
        checkpoint = tmp_path / "scenario.ckpt"
        runner = DriftScenarioRunner(tiny_model, tmp_path / "reg", config)
        runner.run_until(
            200, checkpoint_path=checkpoint, checkpoint_interval=50
        )
        del runner  # the "kill": only the checkpoint file survives

        resumed = DriftScenarioRunner.resume(checkpoint, config)
        assert resumed.resumed_from_tick == 200
        resumed.run_until()
        result = resumed.finish()
        assert json.dumps(
            result.promotion_history(), sort_keys=True
        ) == json.dumps(scenario_result.promotion_history(), sort_keys=True)
