"""Property tests: batched fleet synthesis vs the per-instance reference.

The fleet's struct-of-arrays kernel promises bitwise equality with
``TelemetryAgent.instance_matrix`` for every emitted row -- across
history-window boundaries, for rows added mid-window (scale-out),
after row retirement/reuse, and in fleets mixing plain fast-path
agents with wrapped compat-path agents.  The one documented exception
is counter *rates* on a stream's very first tick, which the batch
matrix back-fills non-causally (see ``repro/telemetry/stream.py``);
first-tick comparisons therefore skip the counter columns.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.orchestrator import build_cell, make_fleet_specs
from repro.fleet.telemetry import FleetTelemetryStream
from repro.reliability.telemetry import ResilientTelemetry


def _build(base_seed):
    spec = make_fleet_specs(1, base_seed=base_seed)[0]
    cell = build_cell(spec)
    deployment = cell.simulation.deployments[cell.application]
    containers = [
        instance.container
        for replicas in deployment.instances.values()
        for instance in replicas
    ]
    return spec, cell, containers


def _counter_columns(catalog):
    return np.concatenate([
        catalog.spec_arrays(catalog.host).counters,
        catalog.spec_arrays(catalog.container).counters,
    ])


def _advance(fleet, expected_rows):
    """One synthesis round; returns ``{row: raw-row copy}``."""
    fleet.begin_tick()
    emitted = fleet.advance_round()
    assert sorted(emitted.tolist()) == sorted(expected_rows)
    return {row: fleet.raw[row].copy() for row in emitted}


def _assert_rows_match_matrix(agent, container, nodes, rows, counter_cols):
    """``rows`` are the container's emissions in tick order, starting
    at its creation tick."""
    reference = agent.instance_matrix(container, nodes)
    assert len(rows) <= reference.shape[0]
    for k, values in enumerate(rows):
        if k == 0:
            # First-tick counter rates are back-filled non-causally by
            # the batch converter; everything else must match bitwise.
            assert np.array_equal(
                values[~counter_cols], reference[0][~counter_cols]
            )
        else:
            assert np.array_equal(values, reference[k]), f"tick {k}"


class TestBatchedSynthesisProperties:
    @given(seed=st.integers(0, 2**16), ticks=st.integers(17, 24))
    @settings(max_examples=5, deadline=None)
    def test_rows_match_instance_matrix_across_windows(self, seed, ticks):
        """Full-fleet emission crossing the 16-tick history window."""
        spec, cell, containers = _build(seed)
        agent = cell.agent
        fleet = FleetTelemetryStream(
            agent.catalog, capacity=len(containers), history=16
        )
        for row, container in enumerate(containers):
            fleet.add_row(
                row, spec.namespace, agent, container, cell.simulation.nodes
            )
        per_row = {row: [] for row in range(len(containers))}
        for _ in range(ticks):
            cell.simulation.step({cell.application: 40.0})
            for row, values in _advance(
                fleet, range(len(containers))
            ).items():
                per_row[row].append(values)
        counter_cols = _counter_columns(agent.catalog)
        for row, container in enumerate(containers):
            _assert_rows_match_matrix(
                agent, container, cell.simulation.nodes,
                per_row[row], counter_cols,
            )

    @given(seed=st.integers(0, 2**16), scale_tick=st.integers(1, 6))
    @settings(max_examples=5, deadline=None)
    def test_scale_out_mid_window(self, seed, scale_tick):
        """A row added after tick 0 joins its own (namespace, node,
        start) host group and still matches its reference matrix."""
        spec, cell, containers = _build(seed)
        agent = cell.agent
        nodes = cell.simulation.nodes
        fleet = FleetTelemetryStream(agent.catalog, capacity=16)
        for row, container in enumerate(containers):
            fleet.add_row(row, spec.namespace, agent, container, nodes)
        live = list(range(len(containers)))
        per_row = {row: [] for row in live}
        extra_row = None
        for t in range(scale_tick + 6):
            if t == scale_tick:
                service, placement = next(
                    iter(cell.autoscaler.rules.placements.items())
                )
                extra = cell.simulation.add_replica(
                    cell.application, service, placement
                )
                extra_row = len(containers)
                fleet.add_row(extra_row, spec.namespace, agent, extra, nodes)
                containers.append(extra)
                live.append(extra_row)
                per_row[extra_row] = []
            cell.simulation.step({cell.application: 55.0})
            for row, values in _advance(fleet, live).items():
                per_row[row].append(values)
        assert extra_row is not None
        counter_cols = _counter_columns(agent.catalog)
        for row, container in zip(live, containers):
            _assert_rows_match_matrix(
                agent, container, nodes, per_row[row], counter_cols
            )

    @given(seed=st.integers(0, 2**16), retire_tick=st.integers(1, 4))
    @settings(max_examples=5, deadline=None)
    def test_row_retirement_and_reuse(self, seed, retire_tick):
        """Retiring a row and reusing its index for a new container
        leaves every surviving stream bitwise intact."""
        spec, cell, containers = _build(seed)
        agent = cell.agent
        nodes = cell.simulation.nodes
        fleet = FleetTelemetryStream(agent.catalog, capacity=16)
        for row, container in enumerate(containers):
            fleet.add_row(row, spec.namespace, agent, container, nodes)
        live = list(range(len(containers)))
        per_row = {row: [] for row in live}
        reused = False
        for t in range(retire_tick + 6):
            if t == retire_tick:
                victim = live.pop(0)
                fleet.retire_row(victim)
                per_row.pop(victim)
                containers.pop(0)
                service, placement = next(
                    iter(cell.autoscaler.rules.placements.items())
                )
                extra = cell.simulation.add_replica(
                    cell.application, service, placement
                )
                fleet.add_row(victim, spec.namespace, agent, extra, nodes)
                containers.append(extra)
                live.append(victim)
                per_row[victim] = []
                reused = True
            cell.simulation.step({cell.application: 60.0})
            for row, values in _advance(fleet, live).items():
                per_row[row].append(values)
        assert reused
        counter_cols = _counter_columns(agent.catalog)
        for row, container in zip(live, containers):
            _assert_rows_match_matrix(
                agent, container, nodes, per_row[row], counter_cols
            )

    @given(seed=st.integers(0, 2**16), ticks=st.integers(3, 10))
    @settings(max_examples=5, deadline=None)
    def test_mixed_plain_and_wrapped_fleet(self, seed, ticks):
        """Wrapped agents ride the compat path; plain agents the fast
        path; both emit the same bits as the reference matrix."""
        spec, cell, containers = _build(seed)
        agent = cell.agent
        nodes = cell.simulation.nodes
        wrapped = ResilientTelemetry(agent, staleness_budget=2)
        fleet = FleetTelemetryStream(agent.catalog, capacity=len(containers))
        for row, container in enumerate(containers):
            row_agent = wrapped if row % 2 else agent
            fleet.add_row(row, spec.namespace, row_agent, container, nodes)
        assert fleet.fast_mask[: len(containers)].tolist() == [
            row % 2 == 0 for row in range(len(containers))
        ]
        per_row = {row: [] for row in range(len(containers))}
        for _ in range(ticks):
            cell.simulation.step({cell.application: 45.0})
            for row, values in _advance(
                fleet, range(len(containers))
            ).items():
                per_row[row].append(values)
        counter_cols = _counter_columns(agent.catalog)
        for row, container in enumerate(containers):
            _assert_rows_match_matrix(
                agent, container, nodes, per_row[row], counter_cols
            )
