"""Tests for the 6-step pipeline, aggregation, thresholds and the model facade."""

import numpy as np
import pytest

from repro.core.aggregation import (
    aggregate_k_of_n,
    aggregate_majority,
    aggregate_or,
)
from repro.core.features.meta import Domain, FeatureMeta, Scope
from repro.core.features.pipeline import (
    MonitorlessPipeline,
    PipelineConfig,
    admissible_configs,
    grid_search_pipeline,
)
from repro.core.model import CLASSIFIERS, MonitorlessModel, make_classifier
from repro.core.thresholds import ThresholdBaseline, tune_threshold_baseline


def synthetic_metrics(n=240, seed=0):
    """A miniature metric matrix with learnable saturation structure."""
    rng = np.random.default_rng(seed)
    load = np.abs(np.sin(np.linspace(0, 6, n))) * 100
    cpu = np.clip(load + rng.normal(0, 3, n), 0, 100)
    mem = np.clip(40 + load / 4 + rng.normal(0, 2, n), 0, 100)
    conns = load * 2 + rng.normal(0, 5, n)
    noise1 = rng.normal(size=n)
    byte_metric = np.abs(load * 1e6 + rng.normal(0, 1e5, n))
    X = np.column_stack([cpu, mem, conns, noise1, byte_metric])
    meta = [
        FeatureMeta("C-CPU-U", Domain.CPU, Scope.CONTAINER, utilization=True),
        FeatureMeta("C-MEM-U", Domain.MEMORY, Scope.CONTAINER, utilization=True),
        FeatureMeta("network.tcp.currestab", Domain.NETWORK, Scope.HOST),
        FeatureMeta("mem.vmstat.foo", Domain.MEMORY, Scope.HOST),
        FeatureMeta("disk.bytes", Domain.DISK, Scope.HOST, bytes_like=True),
    ]
    y = (cpu > 85).astype(np.int64)
    groups = np.array([0] * (n // 2) + [1] * (n - n // 2))
    return X, meta, y, groups


class TestPipelineConfig:
    def test_default_is_paper_configuration(self):
        config = PipelineConfig()
        assert config.normalize and config.reduction1 == "filter"
        assert config.temporal and config.interactions
        assert config.reduction2 == "filter"

    def test_interactions_without_reduction_rejected(self):
        with pytest.raises(ValueError, match="unfeasible"):
            PipelineConfig(reduction1=None, interactions=True)

    def test_invalid_reduction(self):
        with pytest.raises(ValueError, match="Reductions"):
            PipelineConfig(reduction1="lda")

    def test_admissible_configs_exclude_forbidden_combo(self):
        configs = admissible_configs()
        assert all(
            not (c.interactions and c.reduction1 is None) for c in configs
        )
        assert len(configs) > 20

    def test_describe_readable(self):
        assert PipelineConfig().describe() == "norm/filter/time+mult/filter"


class TestPipeline:
    def test_fit_transform_then_transform_same_columns(self):
        X, meta, y, groups = synthetic_metrics()
        pipeline = MonitorlessPipeline(PipelineConfig(temporal_windows=(1, 5)))
        X_train, out_meta = pipeline.fit_transform(X, meta, y, groups)
        X_again, meta_again = pipeline.transform(X, meta, groups)
        assert X_train.shape == X_again.shape
        assert [m.name for m in out_meta] == [m.name for m in meta_again]

    def test_produces_interaction_features(self):
        X, meta, y, groups = synthetic_metrics()
        pipeline = MonitorlessPipeline(PipelineConfig(temporal_windows=(1,)))
        _, out_meta = pipeline.fit_transform(X, meta, y, groups)
        assert any(m.interaction for m in out_meta)

    def test_pca_variant(self):
        X, meta, y, groups = synthetic_metrics()
        config = PipelineConfig(
            reduction1="pca", interactions=False, temporal=False, reduction2=None
        )
        pipeline = MonitorlessPipeline(config)
        X_out, out_meta = pipeline.fit_transform(X, meta, y, groups)
        assert all(m.domain == Domain.LATENT for m in out_meta)
        assert X_out.shape[0] == X.shape[0]

    def test_minimal_config(self):
        X, meta, y, groups = synthetic_metrics()
        config = PipelineConfig(
            normalize=False, reduction1=None, temporal=False,
            interactions=False, reduction2=None,
        )
        X_out, out_meta = pipeline_out = MonitorlessPipeline(config).fit_transform(
            X, meta, y, groups
        )
        # Only binary levels + log scale + variance filter applied.
        assert X_out.shape[1] >= X.shape[1]

    def test_transform_before_fit_raises(self):
        X, meta, _, _ = synthetic_metrics()
        with pytest.raises(RuntimeError, match="fit_transform"):
            MonitorlessPipeline().transform(X, meta)

    def test_grid_search_ranks_configs(self):
        X, meta, y, groups = synthetic_metrics()
        configs = [
            PipelineConfig(temporal=False, interactions=False, reduction2=None),
            PipelineConfig(temporal_windows=(1,)),
        ]
        results = grid_search_pipeline(
            X, meta, y, groups, configs=configs, n_splits=2, n_estimators=8
        )
        assert len(results) == 2
        assert results[0].mean_f1 >= results[1].mean_f1
        assert all(r.n_features > 0 for r in results)


class TestAggregation:
    def test_or_aggregation(self):
        series = {"a": [0, 0, 1], "b": [0, 1, 0]}
        assert aggregate_or(series).tolist() == [0, 1, 1]

    def test_majority(self):
        series = [[1, 0, 1], [0, 0, 1], [0, 1, 1]]
        assert aggregate_majority(series).tolist() == [0, 0, 1]

    def test_k_of_n(self):
        series = [[1, 0], [1, 0], [0, 0]]
        assert aggregate_k_of_n(series, 2).tolist() == [1, 0]

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError, match="lengths"):
            aggregate_or([[0, 1], [0]])

    def test_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate_or([])

    def test_or_upper_bounds_majority(self, rng):
        series = [(rng.random(50) > 0.5).astype(int) for _ in range(5)]
        assert np.all(aggregate_or(series) >= aggregate_majority(series))


class TestThresholdBaselines:
    def _scenario(self):
        rng = np.random.default_rng(0)
        n = 400
        cpu = np.clip(rng.uniform(0, 100, n), 0, 100)
        mem = np.clip(rng.uniform(0, 100, n), 0, 100)
        y = (cpu >= 90).astype(int)
        return [(cpu, mem)], y

    def test_cpu_baseline_finds_true_threshold(self):
        utilizations, y = self._scenario()
        baseline, confusion = tune_threshold_baseline("cpu", utilizations, y, k=0)
        assert abs(baseline.cpu_threshold - 90.0) <= 1.0
        assert confusion.f1 > 0.97

    def test_and_baseline_two_thresholds(self):
        utilizations, y = self._scenario()
        baseline, _ = tune_threshold_baseline("cpu-and-mem", utilizations, y, k=0)
        assert baseline.cpu_threshold is not None
        assert baseline.mem_threshold is not None

    def test_or_detector_predicts_union(self):
        baseline = ThresholdBaseline("cpu-or-mem", 80.0, 70.0)
        cpu = np.array([85.0, 10.0, 10.0])
        mem = np.array([10.0, 75.0, 10.0])
        assert baseline.predict_instance(cpu, mem).tolist() == [1, 1, 0]

    def test_and_detector_predicts_intersection(self):
        baseline = ThresholdBaseline("cpu-and-mem", 80.0, 70.0)
        cpu = np.array([85.0, 85.0, 10.0])
        mem = np.array([75.0, 10.0, 75.0])
        assert baseline.predict_instance(cpu, mem).tolist() == [1, 0, 0]

    def test_label_format(self):
        assert ThresholdBaseline("cpu", 97.0, None).label() == "CPU (97%)"
        assert ThresholdBaseline("cpu-and-mem", 90.0, 50.0).label() == "CPU-AND-MEM"

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            tune_threshold_baseline("gpu", [(np.zeros(3), np.zeros(3))], np.zeros(3))

    def test_application_or_aggregation(self):
        baseline = ThresholdBaseline("cpu", 50.0, None)
        utilizations = [
            (np.array([60.0, 10.0]), np.zeros(2)),
            (np.array([10.0, 10.0]), np.zeros(2)),
        ]
        assert baseline.predict_application(utilizations).tolist() == [1, 0]


class TestMonitorlessModel:
    def test_all_six_classifiers_instantiable(self):
        for name in CLASSIFIERS:
            assert make_classifier(name, random_state=0) is not None

    def test_unknown_classifier(self):
        with pytest.raises(ValueError, match="Unknown classifier"):
            make_classifier("catboost")

    def test_fit_predict_roundtrip(self):
        X, meta, y, groups = synthetic_metrics()
        model = MonitorlessModel(
            pipeline_config=PipelineConfig(temporal_windows=(1,)),
            classifier_params={"n_estimators": 10},
        )
        model.fit(X, meta, y, groups)
        predictions = model.predict(X, meta, groups)
        assert predictions.shape == y.shape
        assert set(np.unique(predictions)) <= {0, 1}
        assert (predictions == y).mean() > 0.9

    def test_lower_threshold_more_positives(self):
        X, meta, y, groups = synthetic_metrics()
        eager = MonitorlessModel(
            pipeline_config=PipelineConfig(temporal_windows=(1,)),
            prediction_threshold=0.2,
            classifier_params={"n_estimators": 10},
        ).fit(X, meta, y, groups)
        strict = MonitorlessModel(
            pipeline_config=PipelineConfig(temporal_windows=(1,)),
            prediction_threshold=0.8,
            classifier_params={"n_estimators": 10},
        ).fit(X, meta, y, groups)
        assert eager.predict(X, meta).sum() >= strict.predict(X, meta).sum()

    def test_feature_importances_named(self):
        X, meta, y, groups = synthetic_metrics()
        model = MonitorlessModel(
            pipeline_config=PipelineConfig(temporal_windows=(1,)),
            classifier_params={"n_estimators": 10},
        ).fit(X, meta, y, groups)
        top = model.feature_importances(top=5)
        assert len(top) == 5
        assert all(isinstance(name, str) and weight >= 0 for name, weight in top)

    def test_save_load_roundtrip(self, tmp_path):
        X, meta, y, groups = synthetic_metrics()
        model = MonitorlessModel(
            pipeline_config=PipelineConfig(temporal_windows=(1,)),
            classifier_params={"n_estimators": 5},
        ).fit(X, meta, y, groups)
        path = tmp_path / "model.pkl"
        model.save(path)
        loaded = MonitorlessModel.load(path)
        assert np.array_equal(loaded.predict(X, meta), model.predict(X, meta))

    def test_invalid_threshold(self):
        with pytest.raises(ValueError, match="prediction_threshold"):
            MonitorlessModel(prediction_threshold=1.5)

    def test_predict_before_fit(self):
        X, meta, _, _ = synthetic_metrics()
        with pytest.raises(RuntimeError, match="fitted"):
            MonitorlessModel().predict(X, meta)
