"""Flat-forest batched inference: equivalence against the per-tree
reference walk and the historical vote order.

The compiled kernel (:mod:`repro.ml.flatforest`) must be *bitwise*
indistinguishable from the code it replaced: same leaves from the
traversal (property-tested against a verbatim copy of the historical
``_apply`` loop, non-finite cells included), same probabilities from
the vote accumulation (reference = the 16-tree chunk loop), and the
hist byte path must land every row in the same leaf as the float path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.boosting import AdaBoostClassifier
from repro.ml.flatforest import FlatForest, FlatTrees, tree_apply
from repro.ml.forest import (
    RandomForestClassifier,
    _PREDICT_CHUNK_TREES,
    _predict_proba_task,
)
from repro.ml.gbm import GradientBoostingClassifier
from repro.ml.tree import DecisionTreeClassifier

_LEAF = -1


def reference_apply(tree, X):
    """Verbatim copy of the historical per-tree ``_apply`` level walk."""
    node = np.zeros(X.shape[0], dtype=np.int64)
    active = tree.tree_feature_[node] != _LEAF
    while np.any(active):
        idx = np.flatnonzero(active)
        nodes = node[idx]
        features = tree.tree_feature_[nodes]
        go_left = X[idx, features] <= tree.tree_threshold_[nodes]
        node[idx] = np.where(
            go_left, tree.tree_left_[nodes], tree.tree_right_[nodes]
        )
        active[idx] = tree.tree_feature_[node[idx]] != _LEAF
    return node


def reference_forest_proba(forest, X):
    """The historical chunked per-tree vote loop."""
    k = len(forest.classes_)
    chunks = [
        forest.estimators_[s:s + _PREDICT_CHUNK_TREES]
        for s in range(0, len(forest.estimators_), _PREDICT_CHUNK_TREES)
    ]
    partials = [_predict_proba_task((chunk, k), {"X": X}) for chunk in chunks]
    accumulated = partials[0]
    for votes in partials[1:]:
        accumulated = accumulated + votes
    return accumulated / len(forest.estimators_)


def make_query(rng, n, d, with_nonfinite=True):
    X = rng.normal(size=(n, d))
    if with_nonfinite and n >= 3:
        X[0, rng.integers(0, d)] = np.nan
        X[1, rng.integers(0, d)] = np.inf
        X[2, rng.integers(0, d)] = -np.inf
    return X


class TestTraversalProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_train=st.integers(20, 150),
        d=st.integers(2, 10),
        n_query=st.integers(1, 60),
        max_depth=st.integers(1, 10),
        nonfinite=st.booleans(),
    )
    def test_flat_equals_reference_apply(
        self, seed, n_train, d, n_query, max_depth, nonfinite
    ):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n_train, d))
        X[:, 0] = np.round(X[:, 0])  # ties exercise equal-to-threshold cells
        y = (X[:, 0] + X[:, 1] > 0).astype(np.int64)
        tree = DecisionTreeClassifier(
            max_depth=max_depth, random_state=int(seed % 1000)
        ).fit(X, y)
        Xq = make_query(rng, n_query, d, with_nonfinite=nonfinite)

        expected = reference_apply(tree, Xq)
        got = tree_apply(
            tree.tree_feature_, tree.tree_threshold_,
            tree.tree_left_, tree.tree_right_, Xq,
        )
        np.testing.assert_array_equal(got, expected)

        flat = FlatTrees.from_arrays(
            [(tree.tree_feature_, tree.tree_threshold_,
              tree.tree_left_, tree.tree_right_)],
            [tree.tree_value_],
        )
        np.testing.assert_array_equal(flat.apply(Xq)[:, 0], expected)

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        n_trees=st.integers(2, 8),
        n_query=st.integers(1, 40),
    )
    def test_flat_multi_tree_equals_per_tree(self, seed, n_trees, n_query):
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(80, 5))
        y = (X[:, 0] > 0).astype(np.int64)
        trees = [
            DecisionTreeClassifier(max_depth=4, random_state=i).fit(
                X, y, sample_weight=rng.integers(1, 4, size=80).astype(float)
            )
            for i in range(n_trees)
        ]
        flat = FlatTrees.from_arrays(
            [(t.tree_feature_, t.tree_threshold_, t.tree_left_, t.tree_right_)
             for t in trees],
            [t.tree_value_ for t in trees],
        )
        Xq = make_query(rng, n_query, 5)
        leaves = flat.apply(Xq)
        for j, tree in enumerate(trees):
            # Flat leaf ids are global; subtract the tree offset.
            np.testing.assert_array_equal(
                leaves[:, j] - flat.offsets[j], reference_apply(tree, Xq)
            )

    def test_single_leaf_tree(self):
        X = np.zeros((10, 3))
        y = np.zeros(10, dtype=np.int64)  # one class -> root is a leaf
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        assert tree.n_leaves_ == 1
        Xq = np.array([[np.nan, np.inf, -np.inf], [0.0, 1.0, 2.0]])
        np.testing.assert_array_equal(tree._apply(Xq), [0, 0])
        flat = FlatTrees.from_arrays(
            [(tree.tree_feature_, tree.tree_threshold_,
              tree.tree_left_, tree.tree_right_)],
            [tree.tree_value_],
        )
        np.testing.assert_array_equal(flat.apply(Xq), [[0], [0]])

    def test_zero_rows(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(50, 4))
        y = (X[:, 0] > 0).astype(np.int64)
        tree = DecisionTreeClassifier(random_state=0).fit(X, y)
        flat = FlatTrees.from_arrays(
            [(tree.tree_feature_, tree.tree_threshold_,
              tree.tree_left_, tree.tree_right_)],
            [tree.tree_value_],
        )
        assert flat.apply(np.empty((0, 4))).shape == (0, 1)


@pytest.fixture(scope="module")
def training_data():
    rng = np.random.default_rng(11)
    n, d = 400, 12
    X = rng.normal(size=(n, d))
    X[:, :4] = np.round(X[:, :4] * 2.0) / 2.0
    y = (X[:, 0] + X[:, 1] * X[:, 2] > 0).astype(np.int64)
    return X, y


class TestForestEquivalence:
    @pytest.mark.parametrize("method", ["exact", "hist"])
    @pytest.mark.parametrize("n_query", [1, 7, 200])
    def test_flat_bitwise_equals_reference(self, training_data, method, n_query):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=21, min_samples_leaf=4, tree_method=method,
            random_state=0,
        ).fit(X, y)
        Xq = np.random.default_rng(5).normal(size=(n_query, X.shape[1]))
        np.testing.assert_array_equal(
            forest.predict_proba(Xq), reference_forest_proba(forest, Xq)
        )

    def test_check_input_false_identical(self, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=9, min_samples_leaf=4, random_state=1
        ).fit(X, y)
        Xq = np.random.default_rng(6).normal(size=(30, X.shape[1]))
        np.testing.assert_array_equal(
            forest.predict_proba(Xq),
            forest.predict_proba(Xq, check_input=False),
        )
        tree = forest.estimators_[0]
        np.testing.assert_array_equal(
            tree.predict_proba(Xq),
            tree.predict_proba(Xq, check_input=False),
        )

    def test_byte_path_equals_float_path(self, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=13, min_samples_leaf=4, tree_method="hist",
            random_state=2,
        ).fit(X, y)
        flat = forest._flat()
        assert flat.binned, "hist thresholds must map exactly onto bin edges"
        rng = np.random.default_rng(7)
        Xq = make_query(rng, 120, X.shape[1])
        np.testing.assert_array_equal(
            flat.flat.apply(Xq),
            flat.flat.apply_binned(forest.binner_.transform(Xq)),
        )
        # Voting over byte-walk leaves must be bitwise the reference
        # probabilities too (predict_proba_binned = the codes-in path).
        Xq_finite = rng.normal(size=(150, X.shape[1]))
        np.testing.assert_array_equal(
            flat.predict_proba_binned(forest.binner_.transform(Xq_finite)),
            reference_forest_proba(forest, Xq_finite),
        )
        np.testing.assert_array_equal(
            forest.predict_proba(Xq_finite),
            reference_forest_proba(forest, Xq_finite),
        )

    def test_code_compile_rejects_foreign_edges(self, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=5, min_samples_leaf=4, random_state=3
        ).fit(X, y)  # exact mode: thresholds are midpoints, not edges
        from repro.ml.binning import Binner

        binner = Binner(16).fit(X)
        flat = FlatForest.from_estimators(
            forest.estimators_, n_classes=2, binner=binner
        )
        assert not flat.binned  # falls back to the float walk
        Xq = np.random.default_rng(8).normal(size=(100, X.shape[1]))
        np.testing.assert_array_equal(
            flat.predict_proba(Xq), reference_forest_proba(forest, Xq)
        )

    def test_parallel_path_matches_flat_path(self, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=20, min_samples_leaf=4, random_state=4
        ).fit(X, y)
        Xq = np.random.default_rng(9).normal(size=(25, X.shape[1]))
        serial = forest.predict_proba(Xq)
        forest.n_jobs = 2
        try:
            pooled = forest.predict_proba(Xq)
        finally:
            forest.n_jobs = None
        np.testing.assert_array_equal(serial, pooled)

    def test_refit_invalidates_compile(self, training_data):
        X, y = training_data
        forest = RandomForestClassifier(
            n_estimators=5, min_samples_leaf=4, random_state=5
        ).fit(X, y)
        Xq = np.random.default_rng(10).normal(size=(10, X.shape[1]))
        forest.predict_proba(Xq)  # builds the compile
        forest.fit(X[:200], y[:200])
        assert forest._flat_forest_ is None
        np.testing.assert_array_equal(
            forest.predict_proba(Xq), reference_forest_proba(forest, Xq)
        )


class TestBoostingEquivalence:
    def test_gbm_bitwise_equals_per_tree_loop(self, training_data):
        X, y = training_data
        gbm = GradientBoostingClassifier(
            n_estimators=15, max_depth=4, random_state=0
        ).fit(X, y)
        Xq = np.random.default_rng(12).normal(size=(80, X.shape[1]))
        raw = np.full(Xq.shape[0], gbm.base_score_)
        for tree in gbm.trees_:
            raw += gbm.learning_rate * tree.predict(Xq)
        np.testing.assert_array_equal(gbm.decision_function(Xq), raw)

    @pytest.mark.parametrize("algorithm", ["SAMME", "SAMME.R"])
    def test_adaboost_equals_per_learner_loop(self, training_data, algorithm):
        X, y = training_data
        model = AdaBoostClassifier(
            n_estimators=8, algorithm=algorithm, random_state=0
        ).fit(X, y)
        Xq = np.random.default_rng(13).normal(size=(60, X.shape[1]))
        k = len(model.classes_)
        scores = np.zeros((Xq.shape[0], k))
        if algorithm == "SAMME":
            for learner, alpha in zip(
                model.estimators_, model.estimator_weights_
            ):
                scores[np.arange(Xq.shape[0]), learner.predict(Xq)] += alpha
        else:
            for learner in model.estimators_:
                log_proba = np.log(
                    np.clip(learner.predict_proba(Xq), 1e-12, 1.0)
                )
                scores += (k - 1.0) * (
                    log_proba - log_proba.mean(axis=1, keepdims=True)
                )
        np.testing.assert_array_equal(model._decision_scores(Xq), scores)


class TestPickle:
    def test_compile_dropped_and_rebuilt(self, training_data):
        import pickle

        X, y = training_data
        for model in (
            RandomForestClassifier(
                n_estimators=5, min_samples_leaf=4, tree_method="hist",
                random_state=6,
            ).fit(X, y),
            GradientBoostingClassifier(
                n_estimators=5, max_depth=3, random_state=6
            ).fit(X, y),
            AdaBoostClassifier(n_estimators=4, random_state=6).fit(X, y),
        ):
            Xq = np.random.default_rng(14).normal(size=(20, X.shape[1]))
            expected = model.predict_proba(Xq)
            clone = pickle.loads(pickle.dumps(model))
            assert "_flat_forest_" not in clone.__dict__
            assert "_flat_trees_" not in clone.__dict__
            np.testing.assert_array_equal(clone.predict_proba(Xq), expected)
