"""Tests for the telemetry substrate: catalog, agent, rates, store."""

import numpy as np
import pytest

from repro.apps.memcache import memcache_application
from repro.apps.solr import solr_application
from repro.cluster.node import MACHINES
from repro.cluster.resources import GIB
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.features.meta import Scope
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.catalog import (
    N_CONTAINER_METRICS,
    N_HOST_METRICS,
    default_catalog,
)
from repro.telemetry.rates import counters_to_rates, to_percent
from repro.telemetry.store import MetricFrame
from repro.workloads.patterns import constant, linear_ramp


@pytest.fixture(scope="module")
def solr_run():
    sim = ClusterSimulation({"training": MACHINES["training"]}, seed=1)
    sim.deploy(
        solr_application(),
        {"solr": [Placement(node="training", cpu_limit=3.0)]},
    )
    return sim.run({"solr": linear_ramp(120, 1, 120)})


class TestCatalog:
    def test_paper_metric_counts(self):
        catalog = default_catalog()
        assert catalog.n_host == N_HOST_METRICS == 952
        assert catalog.n_container == N_CONTAINER_METRICS == 88
        assert catalog.n_metrics == 1040

    def test_table4_metrics_present(self):
        """Every metric named in the paper's Table 4 exists."""
        names = set(default_catalog().names())
        for required in [
            "network.tcp.currestab",
            "hinv.ninterface",
            "kernel.all.pswitch",
            "mem.vmstat.nr_inactive_anon",
            "network.tcpconn.established",
            "network.sockstat.tcp.inuse",
            "cgroup.cpusched.periods",
            "cgroup.cpusched.throttled",
            "kernel.all.nprocs",
            "mem.vmstat.nr_kernel_stack",
            "vfs.inodes.free",
            "mem.vmstat.pgpgin",
            "mem.vmstat.nr_inactive_file",
            "disk.all.aveq",
            "C-CPU-U",
            "C-MEM-U-usage",
            "S-MEM-U-mapped",
            "S-MEM-U-active_file",
        ]:
            assert required in names, required

    def test_unique_names(self):
        names = default_catalog().names()
        assert len(names) == len(set(names))

    def test_exactly_four_utilization_sources(self):
        """Host/container CPU and memory -> the 16 binary features."""
        meta = default_catalog().feature_meta()
        utilization = [m for m in meta if m.utilization]
        assert len(utilization) == 4
        scopes = {(m.scope, m.domain.value) for m in utilization}
        assert (Scope.HOST, "cpu") in scopes
        assert (Scope.CONTAINER, "memory") in scopes

    def test_meta_order_host_then_container(self):
        meta = default_catalog().feature_meta()
        assert all(m.scope == Scope.HOST for m in meta[:952])
        assert all(m.scope == Scope.CONTAINER for m in meta[952:])


class TestAgent:
    def test_instance_matrix_shape_and_finiteness(self, solr_run):
        agent = TelemetryAgent(seed=0)
        matrix = agent.instance_matrix(solr_run.containers[0], solr_run.nodes)
        assert matrix.shape == (120, 1040)
        assert np.all(np.isfinite(matrix))

    def test_deterministic_per_seed(self, solr_run):
        container = solr_run.containers[0]
        a = TelemetryAgent(seed=5).instance_matrix(container, solr_run.nodes)
        b = TelemetryAgent(seed=5).instance_matrix(container, solr_run.nodes)
        c = TelemetryAgent(seed=6).instance_matrix(container, solr_run.nodes)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_cpu_metric_responds_to_load(self, solr_run):
        agent = TelemetryAgent(seed=0)
        catalog = agent.catalog
        matrix = agent.instance_matrix(solr_run.containers[0], solr_run.nodes)
        index = catalog.names().index("C-CPU-U")
        series = matrix[:, index]
        # Load ramps 1 -> 120 against a ~50 req/s capacity: the relative
        # CPU utilization must rise to (nearly) 100%.
        assert series[:10].mean() < 30.0
        assert series[-10:].mean() > 90.0

    def test_throttling_appears_when_over_quota(self, solr_run):
        agent = TelemetryAgent(seed=0)
        matrix = agent.instance_matrix(solr_run.containers[0], solr_run.nodes)
        index = agent.catalog.names().index("cgroup.cpusched.throttled")
        assert matrix[-10:, index].mean() > 1.0  # throttled periods/s
        assert matrix[:5, index].mean() < 1.0

    def test_constant_metric_constant(self, solr_run):
        agent = TelemetryAgent(seed=0)
        matrix = agent.instance_matrix(solr_run.containers[0], solr_run.nodes)
        index = agent.catalog.names().index("hinv.ninterface")
        assert np.allclose(matrix[:, index], 4.0)

    def test_memory_pressure_drives_pagein_metric(self):
        sim = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        sim.deploy(
            memcache_application(),
            {"memcache": [Placement(node="training", memory_limit=4 * GIB)]},
        )
        result = sim.run({"memcache": constant(60, 30e3)})
        agent = TelemetryAgent(seed=0)
        matrix = agent.instance_matrix(result.containers[0], result.nodes)
        index = agent.catalog.names().index("mem.vmstat.pgpgin")
        assert matrix[:, index].mean() > 100.0  # heavy page-in traffic

    def test_window_extraction_matches_full(self, solr_run):
        """State (pre-noise) must be identical whether extracted whole
        or in a window; metric noise streams may differ."""
        agent = TelemetryAgent(seed=0)
        container = solr_run.containers[0]
        node = solr_run.nodes["training"]
        full = agent.container_state(container, node, 0, 120)
        window = agent.container_state(container, node, 100, 120)
        assert np.allclose(full[100:120], window)

    def test_utilization_series(self, solr_run):
        agent = TelemetryAgent(seed=0)
        cpu, mem = agent.utilization_series(solr_run.containers[0], solr_run.nodes)
        assert cpu.shape == (120,)
        assert cpu.max() <= 100.0 and cpu.min() >= 0.0


class TestRates:
    def test_counter_differentiated(self):
        values = np.array([[0.0], [10.0], [30.0], [60.0]])
        rates = counters_to_rates(values, np.array([True]))
        assert rates[:, 0].tolist() == [10.0, 10.0, 20.0, 30.0]

    def test_counter_wrap_clamped(self):
        values = np.array([[100.0], [5.0], [10.0]])
        rates = counters_to_rates(values, np.array([True]))
        assert rates[1, 0] == 0.0

    def test_gauge_columns_untouched(self):
        values = np.array([[1.0, 5.0], [2.0, 6.0]])
        rates = counters_to_rates(values, np.array([True, False]))
        assert rates[:, 1].tolist() == [5.0, 6.0]

    def test_interval_scaling(self):
        values = np.array([[0.0], [20.0]])
        rates = counters_to_rates(values, np.array([True]), interval_seconds=2.0)
        assert rates[1, 0] == 10.0

    def test_single_sample_counter_rate_is_zero(self):
        """A length-1 window has no delta to back-fill from; the lone
        row is 0.0 (the documented contract, matching the streaming
        emitter's first tick), and gauge columns pass through."""
        values = np.array([[7.0, 3.5]])
        rates = counters_to_rates(values, np.array([True, False]))
        assert rates.shape == (1, 2)
        assert rates[0, 0] == 0.0
        assert rates[0, 1] == 3.5

    def test_to_percent(self):
        assert to_percent(np.array([5.0]), 10.0)[0] == 50.0
        assert to_percent(np.array([50.0]), 10.0)[0] == 100.0  # clipped

    def test_to_percent_invalid_capacity(self):
        with pytest.raises(ValueError):
            to_percent(np.array([1.0]), 0.0)


class TestMetricFrame:
    def test_column_access(self):
        frame = MetricFrame(np.arange(6).reshape(3, 2), ["a", "b"])
        assert frame.column("b").tolist() == [1, 3, 5]
        with pytest.raises(KeyError):
            frame.column("c")

    def test_select_reorders(self):
        frame = MetricFrame(np.arange(6).reshape(3, 2), ["a", "b"])
        selected = frame.select(["b", "a"])
        assert selected.columns == ["b", "a"]
        assert selected.values[0].tolist() == [1, 0]

    def test_hstack_rejects_duplicates(self):
        frame = MetricFrame(np.zeros((2, 1)), ["a"])
        with pytest.raises(ValueError, match="Duplicate"):
            frame.hstack(MetricFrame(np.zeros((2, 1)), ["a"]))

    def test_vstack_requires_same_columns(self):
        a = MetricFrame(np.zeros((2, 1)), ["a"])
        b = MetricFrame(np.zeros((2, 1)), ["b"])
        with pytest.raises(ValueError, match="identical columns"):
            MetricFrame.vstack([a, b])

    def test_vstack_concatenates(self):
        a = MetricFrame(np.zeros((2, 1)), ["a"])
        b = MetricFrame(np.ones((3, 1)), ["a"])
        stacked = MetricFrame.vstack([a, b])
        assert stacked.shape == (5, 1)
