"""Tests for Kneedle labeling (paper section 2.2)."""

import numpy as np
import pytest

from repro.core.labeling import KneedleLabeler, kneedle, savitzky_golay


def saturation_curve(knee=700.0, top=1000.0, n=300, noise=0.0, seed=0):
    """Throughput curve rising linearly then flat at `knee`."""
    load = np.linspace(1.0, top, n)
    kpi = np.minimum(load, knee)
    if noise:
        kpi = kpi + np.random.default_rng(seed).normal(0, noise, n)
    return load, kpi


class TestSavitzkyGolay:
    def test_smooths_noise(self, rng):
        signal = np.sin(np.linspace(0, 4, 200))
        noisy = signal + rng.normal(0, 0.2, 200)
        smoothed = savitzky_golay(noisy, window_length=21, polyorder=3)
        assert np.mean((smoothed - signal) ** 2) < np.mean((noisy - signal) ** 2)

    def test_short_series_passthrough(self):
        values = np.array([1.0, 2.0])
        assert np.array_equal(savitzky_golay(values), values)

    def test_window_clipped_to_length(self):
        values = np.linspace(0, 1, 7)
        smoothed = savitzky_golay(values, window_length=99, polyorder=2)
        assert smoothed.shape == values.shape

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            savitzky_golay(np.zeros((3, 3)))


class TestKneedle:
    def test_finds_knee_of_clean_curve(self):
        load, kpi = saturation_curve()
        result = kneedle(load, kpi)
        assert abs(result.knee_x - 700.0) < 40.0

    def test_finds_knee_under_noise(self):
        load, kpi = saturation_curve(noise=15.0)
        result = kneedle(load, kpi, window_length=21)
        assert abs(result.knee_x - 700.0) < 60.0

    def test_knee_y_close_to_capacity(self):
        load, kpi = saturation_curve()
        result = kneedle(load, kpi)
        assert abs(result.knee_y - 700.0) < 40.0

    def test_concave_down_flip(self):
        # An availability-style KPI: flat then dropping.
        load = np.linspace(1, 1000, 300)
        kpi = np.minimum(1000.0 - load, 300.0)[::-1]  # decreasing, elbow
        result = kneedle(load, kpi, concave_down=True)
        assert 0 <= result.knee_index < 300

    def test_choose_overrides_candidate(self):
        load, kpi = saturation_curve(noise=10.0)
        result = kneedle(load, kpi)
        if result.candidates.size > 1:
            chosen = kneedle(load, kpi, choose=0)
            assert chosen.knee_index == result.candidates[0]

    def test_choose_out_of_range(self):
        load, kpi = saturation_curve()
        with pytest.raises(ValueError, match="choose"):
            kneedle(load, kpi, choose=99)

    def test_too_few_points(self):
        with pytest.raises(ValueError, match="5 points"):
            kneedle(np.arange(3), np.arange(3))

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            kneedle(np.arange(10), np.arange(9))

    def test_linear_curve_falls_back(self):
        load = np.linspace(0, 1, 50)
        result = kneedle(load, load.copy())
        assert 0 <= result.knee_index < 50  # no crash on kneeless input


class TestKneedleLabeler:
    def test_labels_split_at_threshold(self):
        load, kpi = saturation_curve()
        labeler = KneedleLabeler(margin=0.0).fit(load, kpi)
        labels = labeler.label(np.array([100.0, 690.0, 710.0, 900.0]))
        assert labels[0] == 0 and labels[-1] == 1

    def test_margin_moves_threshold_down(self):
        load, kpi = saturation_curve()
        tight = KneedleLabeler(margin=0.0).fit(load, kpi)
        slack = KneedleLabeler(margin=0.05).fit(load, kpi)
        assert slack.threshold_ < tight.threshold_

    def test_capacity_pinned_kpi_labeled_saturated(self):
        """The reason the margin exists: a saturated service reports
        throughput == capacity, which must land on the saturated side."""
        load, kpi = saturation_curve(noise=5.0)
        labeler = KneedleLabeler(window_length=21).fit(load, kpi)
        pinned = np.full(50, 700.0)
        assert labeler.label(pinned).mean() > 0.9

    def test_concave_down_labels_low_values(self):
        load = np.linspace(1, 100, 200)
        kpi = np.maximum(80.0 - np.maximum(load - 50, 0.0), 20.0)
        labeler = KneedleLabeler(concave_down=True).fit(load, kpi)
        assert labeler.label(np.array([15.0]))[0] == 1
        assert labeler.label(np.array([79.0]))[0] == 0

    def test_label_before_fit_raises(self):
        with pytest.raises(RuntimeError, match="fitted"):
            KneedleLabeler().label(np.zeros(3))

    def test_invalid_margin(self):
        with pytest.raises(ValueError, match="margin"):
            KneedleLabeler(margin=1.5)

    def test_fit_label_shortcut(self):
        load, kpi = saturation_curve()
        labels = KneedleLabeler().fit_label(load, kpi)
        assert labels.shape == kpi.shape
        assert set(np.unique(labels)) <= {0, 1}
