"""Tests for the random forest."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy_score


class TestAccuracy:
    def test_beats_chance_comfortably(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        forest = RandomForestClassifier(n_estimators=25, random_state=0)
        forest.fit(X_train, y_train)
        assert accuracy_score(y_test, forest.predict(X_test)) > 0.85

    def test_deterministic_given_seed(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        a = RandomForestClassifier(n_estimators=10, random_state=42).fit(
            X_train, y_train
        )
        b = RandomForestClassifier(n_estimators=10, random_state=42).fit(
            X_train, y_train
        )
        assert np.array_equal(a.predict(X_test), b.predict(X_test))

    def test_probabilities_valid(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        forest = RandomForestClassifier(n_estimators=10, random_state=0)
        forest.fit(X_train, y_train)
        proba = forest.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        assert np.all(proba >= 0) and np.all(proba <= 1)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_no_bootstrap_mode(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        forest = RandomForestClassifier(
            n_estimators=8, bootstrap=False, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, forest.predict(X_test)) > 0.8


class TestThresholdPrediction:
    def test_lower_threshold_never_reduces_positives(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        forest = RandomForestClassifier(n_estimators=15, random_state=0)
        forest.fit(X_train, y_train)
        at_04 = forest.predict_with_threshold(X_test, 0.4).sum()
        at_05 = forest.predict_with_threshold(X_test, 0.5).sum()
        at_08 = forest.predict_with_threshold(X_test, 0.8).sum()
        assert at_04 >= at_05 >= at_08

    def test_threshold_requires_binary(self):
        X = np.random.default_rng(0).normal(size=(60, 3))
        y = np.arange(60) % 3
        forest = RandomForestClassifier(n_estimators=5, random_state=0).fit(X, y)
        with pytest.raises(ValueError, match="binary"):
            forest.predict_with_threshold(X, 0.4)


class TestImportances:
    def test_top_features_finds_signal(self):
        generator = np.random.default_rng(1)
        X = generator.normal(size=(600, 20))
        y = ((X[:, 4] + X[:, 9]) > 0).astype(int)
        forest = RandomForestClassifier(n_estimators=25, random_state=0).fit(X, y)
        top = set(forest.top_features(4).tolist())
        assert {4, 9} <= top

    def test_importances_normalized(self, binary_data):
        X_train, y_train, _, _ = binary_data
        forest = RandomForestClassifier(n_estimators=10, random_state=0)
        forest.fit(X_train, y_train)
        assert np.isclose(forest.feature_importances_.sum(), 1.0)


class TestClassWeights:
    @pytest.mark.parametrize("mode", ["balanced", "subsample", None])
    def test_modes_accepted(self, mode, binary_data):
        X_train, y_train, _, _ = binary_data
        forest = RandomForestClassifier(
            n_estimators=5, class_weight=mode, random_state=0
        )
        forest.fit(X_train, y_train)
        assert forest.score(X_train, y_train) > 0.8

    def test_imbalanced_data_survives_bootstrap(self):
        # 2% positives: many bootstraps will be single-class; trees must
        # degrade to leaves instead of crashing.
        generator = np.random.default_rng(3)
        X = generator.normal(size=(300, 4))
        y = np.zeros(300, dtype=int)
        y[:6] = 1
        forest = RandomForestClassifier(n_estimators=10, random_state=0).fit(X, y)
        assert forest.predict(X).shape == (300,)


class TestErrors:
    def test_zero_estimators(self):
        with pytest.raises(ValueError, match="n_estimators"):
            RandomForestClassifier(n_estimators=0).fit(np.zeros((4, 1)), [0, 1, 0, 1])

    def test_feature_mismatch_at_predict(self, binary_data):
        X_train, y_train, _, _ = binary_data
        forest = RandomForestClassifier(n_estimators=3, random_state=0)
        forest.fit(X_train, y_train)
        with pytest.raises(ValueError, match="features"):
            forest.predict(np.zeros((2, X_train.shape[1] + 1)))
