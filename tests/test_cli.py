"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_requires_out(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_evaluate_scenario_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["evaluate", "--model", "m.pkl", "--scenario", "netflix"]
            )

    def test_defaults(self):
        args = build_parser().parse_args(["train", "--out", "m.pkl"])
        assert args.duration == 300 and args.trees == 60 and args.runs is None


class TestInventory:
    def test_prints_all_25_runs(self):
        out = io.StringIO()
        assert main(["inventory"], out=out) == 0
        text = out.getvalue()
        assert text.count("\n") == 26  # header + 25 rows
        assert "sin1000" in text and "IO-Wait" in text


class TestTrainEvaluateExplain:
    @pytest.fixture(scope="class")
    def model_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.pkl"
        out = io.StringIO()
        code = main(
            [
                "train",
                "--out", str(path),
                "--duration", "80",
                "--trees", "10",
                "--runs", "1", "2", "7", "12",
                "--seed", "3",
            ],
            out=out,
        )
        assert code == 0
        assert path.exists()
        return path

    def test_train_reports_corpus(self, model_path):
        # fixture already trained; re-loading must work
        from repro.core.model import MonitorlessModel

        model = MonitorlessModel.load(model_path)
        assert model.classifier_ is not None

    def test_evaluate_elgg(self, model_path):
        out = io.StringIO()
        code = main(
            [
                "evaluate",
                "--model", str(model_path),
                "--scenario", "elgg",
                "--duration", "300",
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "monitorless" in text
        assert "F1_2" in text
        assert text.count("algorithm=") == 5

    def test_explain(self, model_path):
        out = io.StringIO()
        code = main(
            ["explain", "--model", str(model_path), "--top", "5",
             "--duration", "60"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "Surrogate scaling rules" in text
        assert "fidelity" in text

    def test_stream_trace_emits_spans_and_metrics(self, model_path):
        from repro import obs

        out = io.StringIO()
        code = main(
            ["stream", "--model", str(model_path), "--duration", "600",
             "--trace"],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "== span tree ==" in text
        assert "orchestrator.tick" in text
        assert "pipeline.transform_tick" in text
        assert "== metrics (json) ==" in text
        assert '"orchestrator.ticks": 600.0' in text
        assert "== metrics (prometheus) ==" in text
        assert "repro_orchestrator_ticks 600" in text
        assert "repro_telemetry_rows_emitted" in text
        # The CLI turns recording back off on exit.
        assert not obs.enabled()
        obs.reset()


class TestObsCommand:
    def test_obs_runs_and_exports_all_formats(self):
        from repro import obs

        out = io.StringIO()
        code = main(["obs", "--duration", "30"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "Drove 30 instrumented ticks" in text
        assert "== span tree ==" in text
        assert "orchestrator.tick" in text
        assert "simulation.step" in text
        assert '"orchestrator.ticks": 30.0' in text
        assert "repro_orchestrator_ticks 30" in text
        assert 'repro_orchestrator_tick_seconds_bucket{le="+Inf"} 30' in text
        assert not obs.enabled()
        obs.reset()

    def test_chaos_with_saved_model(self, tiny_model, tmp_path):
        import json

        model_path = tmp_path / "model.pkl"
        tiny_model.save(model_path)
        report_path = tmp_path / "chaos.json"
        out = io.StringIO()
        code = main(
            [
                "chaos",
                "--model", str(model_path),
                "--duration", "60",
                "--report", str(report_path),
            ],
            out=out,
        )
        assert code == 0
        text = out.getvalue()
        assert "SLO violations (chaos)" in text
        assert "within bound" in text
        report = json.loads(report_path.read_text())
        assert report["duration"] == 60
        assert report["within_bound"] is True

    def test_obs_prom_only(self):
        from repro import obs

        out = io.StringIO()
        code = main(["obs", "--duration", "10", "--format", "prom"], out=out)
        assert code == 0
        text = out.getvalue()
        assert "repro_orchestrator_ticks 10" in text
        assert "== span tree ==" not in text
        assert "== metrics (json) ==" not in text
        obs.reset()
