"""Tests for the feature-engineering steps (paper section 3.3)."""

import numpy as np
import pytest

from repro.core.features.binary import BinaryLevelFeatures
from repro.core.features.interactions import InteractionFeatures
from repro.core.features.meta import Domain, FeatureMeta, Scope, infer_domain
from repro.core.features.scaling import LogScaler
from repro.core.features.selection import (
    PCAReducer,
    RandomForestFilter,
    VarianceFilter,
)
from repro.core.features.temporal import TemporalFeatures, lagged, rolling_average


def meta_of(*specs):
    """Helper: build FeatureMeta list from (name, domain, scope, flags)."""
    out = []
    for spec in specs:
        name, domain, scope = spec[:3]
        flags = spec[3] if len(spec) > 3 else {}
        out.append(FeatureMeta(name=name, domain=domain, scope=scope, **flags))
    return out


class TestDomainInference:
    @pytest.mark.parametrize(
        "name,domain",
        [
            ("kernel.all.cpu.util", Domain.CPU),
            ("cgroup.cpusched.throttled", Domain.CPU),
            ("cgroup.memory.usage", Domain.MEMORY),
            ("mem.vmstat.pgpgin", Domain.MEMORY),
            ("network.tcp.currestab", Domain.NETWORK),
            ("hinv.ninterface", Domain.NETWORK),
            ("disk.all.aveq", Domain.DISK),
            ("vfs.inodes.free", Domain.FILESYSTEM),
            ("kernel.all.pswitch", Domain.KERNEL),
            ("something.unknown", Domain.OTHER),
        ],
    )
    def test_prefix_rules(self, name, domain):
        assert infer_domain(name) == domain

    def test_derived_renames_and_flags(self):
        base = FeatureMeta(name="x", domain=Domain.CPU)
        derived = base.derived("-AVG5", temporal=True)
        assert derived.name == "x-AVG5" and derived.temporal
        assert base.name == "x"  # immutable


class TestBinaryLevels:
    def _util_meta(self):
        return meta_of(
            ("H-CPU", Domain.CPU, Scope.HOST, {"utilization": True}),
            ("H-MEM", Domain.MEMORY, Scope.HOST, {"utilization": True}),
            ("C-CPU", Domain.CPU, Scope.CONTAINER, {"utilization": True}),
            ("C-MEM", Domain.MEMORY, Scope.CONTAINER, {"utilization": True}),
            ("other", Domain.NETWORK, Scope.HOST),
        )

    def test_sixteen_binary_features(self):
        """2 CPU x 5 levels + 2 MEM x 3 levels = 16 (section 3.3.1)."""
        X = np.random.default_rng(0).uniform(0, 100, size=(20, 5))
        transformed, meta = BinaryLevelFeatures().fit_transform(X, self._util_meta())
        binary = [m for m in meta if m.binary]
        assert len(binary) == 16
        assert transformed.shape == (20, 5 + 16)

    def test_level_boundaries(self):
        X = np.array([[30.0, 0, 0, 0, 0], [65.0, 0, 0, 0, 0],
                      [85.0, 0, 0, 0, 0], [92.0, 0, 0, 0, 0],
                      [97.0, 0, 0, 0, 0]])
        transformed, meta = BinaryLevelFeatures().fit_transform(X, self._util_meta())
        names = [m.name for m in meta]
        low = transformed[:, names.index("H-CPU-LOW")]
        high = transformed[:, names.index("H-CPU-HIGH")]
        veryhigh = transformed[:, names.index("H-CPU-VERYHIGH")]
        extreme = transformed[:, names.index("H-CPU-EXTREME")]
        assert low.tolist() == [1, 0, 0, 0, 0]
        assert high.tolist() == [0, 0, 1, 1, 1]
        assert veryhigh.tolist() == [0, 0, 0, 1, 1]
        assert extreme.tolist() == [0, 0, 0, 0, 1]

    def test_memory_has_no_veryhigh(self):
        X = np.zeros((3, 5))
        _, meta = BinaryLevelFeatures().fit_transform(X, self._util_meta())
        names = [m.name for m in meta]
        assert "H-MEM-HIGH" in names
        assert "H-MEM-VERYHIGH" not in names

    def test_no_utilization_columns_is_identity(self):
        X = np.ones((4, 1))
        meta = meta_of(("x", Domain.OTHER, Scope.HOST))
        transformed, out_meta = BinaryLevelFeatures().fit_transform(X, meta)
        assert transformed.shape == (4, 1) and len(out_meta) == 1

    def test_transform_before_fit(self):
        with pytest.raises(RuntimeError, match="fitted"):
            BinaryLevelFeatures().transform(np.zeros((2, 1)), [])


class TestLogScaler:
    def test_log_applied_to_bytes_columns_only(self):
        meta = meta_of(
            ("bytes", Domain.DISK, Scope.HOST, {"bytes_like": True}),
            ("plain", Domain.CPU, Scope.HOST),
        )
        X = np.array([[float(np.e - 1), 5.0]])
        transformed, out_meta = LogScaler().fit_transform(X, meta)
        assert np.isclose(transformed[0, 0], 1.0)  # log1p(e-1) = 1
        assert transformed[0, 1] == 5.0
        assert out_meta[0].name == "bytes-LOG" and not out_meta[0].bytes_like

    def test_negative_values_clamped(self):
        meta = meta_of(("b", Domain.DISK, Scope.HOST, {"bytes_like": True}))
        transformed, _ = LogScaler().fit_transform(np.array([[-5.0]]), meta)
        assert transformed[0, 0] == 0.0

    def test_input_not_mutated(self):
        meta = meta_of(("b", Domain.DISK, Scope.HOST, {"bytes_like": True}))
        X = np.array([[100.0]])
        LogScaler().fit_transform(X, meta)
        assert X[0, 0] == 100.0


class TestTemporal:
    def test_rolling_average_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(rolling_average(values, 2), [1.0, 1.5, 2.5, 3.5])

    def test_rolling_average_warmup_shortens(self):
        values = np.array([10.0, 0.0, 0.0])
        averaged = rolling_average(values, 3)
        assert averaged[0] == 10.0  # window of 1 at the start

    def test_lagged_values(self):
        values = np.array([1.0, 2.0, 3.0, 4.0])
        assert np.allclose(lagged(values, 2), [1.0, 1.0, 1.0, 2.0])

    def test_lag_zero_identity(self):
        values = np.array([3.0, 1.0])
        assert np.allclose(lagged(values, 0), values)

    def test_feature_counts(self):
        meta = meta_of(("a", Domain.CPU, Scope.HOST), ("b", Domain.DISK, Scope.HOST))
        X = np.random.default_rng(0).normal(size=(30, 2))
        transformed, out_meta = TemporalFeatures(windows=(1, 5)).fit_transform(X, meta)
        # 2 original + 2 features x 2 windows x (AVG + LAG) = 10
        assert transformed.shape == (30, 10)
        names = [m.name for m in out_meta]
        assert "a-AVG1" in names and "b-LAGGED5" in names

    def test_group_boundaries_respected(self):
        meta = meta_of(("a", Domain.CPU, Scope.HOST))
        X = np.concatenate([np.zeros(5), np.full(5, 100.0)]).reshape(-1, 1)
        groups = np.array([0] * 5 + [1] * 5)
        transformed, out_meta = TemporalFeatures(windows=(3,)).fit_transform(
            X, meta, groups=groups
        )
        names = [m.name for m in out_meta]
        lag_col = transformed[:, names.index("a-LAGGED3")]
        # First sample of run 2 must see run-2's value, not run-1's zero.
        assert lag_col[5] == 100.0

    def test_temporal_features_not_re_derived(self):
        meta = [FeatureMeta(name="a-AVG1", domain=Domain.CPU, temporal=True)]
        X = np.ones((5, 1))
        transformed, _ = TemporalFeatures().fit_transform(X, meta)
        assert transformed.shape == (5, 1)  # nothing added

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            TemporalFeatures(windows=(0,))


class TestInteractions:
    def test_cross_domain_products_only(self):
        meta = meta_of(
            ("cpu1", Domain.CPU, Scope.HOST),
            ("cpu2", Domain.CPU, Scope.HOST),
            ("net1", Domain.NETWORK, Scope.HOST),
        )
        X = np.array([[2.0, 3.0, 4.0]])
        transformed, out_meta = InteractionFeatures().fit_transform(X, meta)
        names = [m.name for m in out_meta]
        assert "cpu1 x net1" in names and "cpu2 x net1" in names
        assert "cpu1 x cpu2" not in names  # same domain
        product = transformed[0, names.index("cpu1 x net1")]
        assert product == 8.0

    def test_temporal_features_excluded(self):
        meta = [
            FeatureMeta(name="a", domain=Domain.CPU),
            FeatureMeta(name="b-AVG5", domain=Domain.NETWORK, temporal=True),
        ]
        X = np.ones((3, 2))
        transformed, _ = InteractionFeatures().fit_transform(X, meta)
        assert transformed.shape == (3, 2)

    def test_cap_raises_not_truncates(self):
        meta = [
            FeatureMeta(name=f"m{i}", domain=Domain.CPU if i % 2 else Domain.DISK)
            for i in range(60)
        ]
        X = np.ones((2, 60))
        with pytest.raises(ValueError, match="reduction step"):
            InteractionFeatures(max_pairs=10).fit(X, meta)

    def test_interaction_meta_flag(self):
        meta = meta_of(
            ("a", Domain.CPU, Scope.HOST), ("b", Domain.DISK, Scope.HOST)
        )
        _, out_meta = InteractionFeatures().fit_transform(np.ones((2, 2)), meta)
        assert out_meta[-1].interaction


class TestSelection:
    def test_rf_filter_keeps_informative_feature(self, rng):
        X = rng.normal(size=(300, 20))
        y = (X[:, 7] > 0).astype(int)
        meta = [FeatureMeta(name=f"m{i}") for i in range(20)]
        filtered, out_meta = RandomForestFilter(
            top_k=3, per_group=False, n_estimators=15, random_state=0
        ).fit_transform(X, meta, y)
        assert "m7" in [m.name for m in out_meta]

    def test_rf_filter_union_over_groups(self, rng):
        """Per-run filtering keeps the union of each run's top features."""
        X = rng.normal(size=(400, 10))
        groups = np.array([0] * 200 + [1] * 200)
        y = np.concatenate(
            [(X[:200, 1] > 0).astype(int), (X[200:, 8] > 0).astype(int)]
        )
        meta = [FeatureMeta(name=f"m{i}") for i in range(10)]
        _, out_meta = RandomForestFilter(
            top_k=2, per_group=True, n_estimators=15, random_state=0
        ).fit_transform(X, meta, y, groups)
        names = [m.name for m in out_meta]
        assert "m1" in names and "m8" in names

    def test_rf_filter_requires_labels(self):
        with pytest.raises(ValueError, match="supervised"):
            RandomForestFilter().fit(np.zeros((4, 2)), [FeatureMeta("a")] * 2, None)

    def test_pca_reducer_latent_meta(self, rng):
        X = rng.normal(size=(50, 8))
        meta = [FeatureMeta(name=f"m{i}") for i in range(8)]
        reduced, out_meta = PCAReducer(n_components=3).fit_transform(X, meta)
        assert reduced.shape[1] == 3
        assert all(m.domain == Domain.LATENT for m in out_meta)

    def test_pca_reducer_max_components_cap(self, rng):
        X = rng.normal(size=(50, 30))
        meta = [FeatureMeta(name=f"m{i}") for i in range(30)]
        reduced, _ = PCAReducer(n_components=0.9999, max_components=5).fit_transform(
            X, meta
        )
        assert reduced.shape[1] <= 5

    def test_variance_filter_drops_constants(self):
        X = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        meta = [FeatureMeta(name="const"), FeatureMeta(name="varies")]
        filtered, out_meta = VarianceFilter().fit_transform(X, meta)
        assert [m.name for m in out_meta] == ["varies"]
        assert filtered.shape == (10, 1)

    def test_variance_filter_all_constant_raises(self):
        X = np.ones((5, 2))
        meta = [FeatureMeta(name="a"), FeatureMeta(name="b")]
        with pytest.raises(ValueError, match="zero variance"):
            VarianceFilter().fit(X, meta)
