"""Tests for edge offloading and additional policy behaviours."""

import pytest

from repro.apps.teastore import teastore_application
from repro.cluster.simulation import ClusterSimulation
from repro.datasets.experiments import evaluation_nodes, teastore_placements
from repro.orchestrator.edge import EdgeDeployment, TrafficAccount
from repro.telemetry.agent import TelemetryAgent


@pytest.fixture()
def teastore_sim():
    simulation = ClusterSimulation(evaluation_nodes(), seed=0)
    simulation.deploy(teastore_application(), teastore_placements())
    return simulation


class TestTrafficAccount:
    def test_reduction_factor(self):
        account = TrafficAccount(
            centralized_bytes=1e9, edge_bytes=1e6, samples=1000
        )
        assert account.reduction_factor == pytest.approx(1000.0)

    def test_zero_edge_bytes_infinite(self):
        account = TrafficAccount(centralized_bytes=1.0, edge_bytes=0.0, samples=1)
        assert account.reduction_factor == float("inf")

    def test_summary_keys(self):
        account = TrafficAccount(2e6, 1e3, 10)
        assert set(account.summary()) == {"centralized_MB", "edge_MB", "reduction"}


class TestEdgeDeployment:
    def test_per_sample_bytes_scale_with_catalog(self, tiny_model, teastore_sim):
        edge = EdgeDeployment(tiny_model, TelemetryAgent(seed=0))
        centralized = edge.per_sample_bytes(edge=False)
        at_edge = edge.per_sample_bytes(edge=True)
        assert centralized > 1040 * 8  # at least the raw float payload
        assert at_edge < 100

    def test_account_counts_replicas_and_duration(self, tiny_model, teastore_sim):
        edge = EdgeDeployment(tiny_model, TelemetryAgent(seed=0))
        account = edge.account(teastore_sim, "teastore", duration=100)
        assert account.samples == 7 * 100  # 7 single-replica services
        assert account.centralized_bytes > account.edge_bytes

    def test_edge_predictions_identical_to_policy(self, tiny_model, teastore_sim):
        agent = TelemetryAgent(seed=0)
        edge = EdgeDeployment(tiny_model, agent, window=8)
        for _ in range(10):
            teastore_sim.step({"teastore": 200.0})
        direct = edge.policy.saturated_services(teastore_sim, "teastore", 9)
        via_edge = edge.saturated_services(teastore_sim, "teastore", 9)
        assert direct == via_edge

    def test_cpu_overhead_estimate(self, tiny_model):
        edge = EdgeDeployment(tiny_model, TelemetryAgent(seed=0))
        assert edge.agent_cpu_overhead_estimate(0.005, 10) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            edge.agent_cpu_overhead_estimate(-1.0, 1)


class TestBatchedMonitorlessPolicy:
    def test_no_history_returns_empty(self, tiny_model, teastore_sim):
        from repro.orchestrator.policies import MonitorlessPolicy

        policy = MonitorlessPolicy(tiny_model, TelemetryAgent(seed=0), window=8)
        assert policy.saturated_services(teastore_sim, "teastore", 0) == set()

    def test_batched_matches_per_container_predictions(
        self, tiny_model, teastore_sim
    ):
        """The batched fast path must agree with predicting container by
        container through the public model API."""
        from repro.orchestrator.policies import MonitorlessPolicy

        agent = TelemetryAgent(seed=0)
        policy = MonitorlessPolicy(tiny_model, agent, window=8)
        for _ in range(12):
            teastore_sim.step({"teastore": 700.0})
        batched = policy.saturated_services(teastore_sim, "teastore", 11)

        expected = set()
        meta = agent.catalog.feature_meta()
        deployment = teastore_sim.deployments["teastore"]
        for service, replicas in deployment.instances.items():
            for instance in replicas:
                container = instance.container
                end = container.created_at + len(container.history)
                start = max(container.created_at, end - 8)
                window = agent.instance_matrix(
                    container, teastore_sim.nodes, start=start, end=end
                )
                if tiny_model.predict(window, meta)[-1] == 1:
                    expected.add(service)
        assert batched == expected
