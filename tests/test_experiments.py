"""Tests for the evaluation scenarios (section 4)."""

import numpy as np
import pytest

from repro.datasets.experiments import (
    calibrate_application,
    elgg_placements,
    elgg_scenario,
    evaluate_detectors,
    evaluation_nodes,
    multitenant_scenario,
    sockshop_placements,
    sockshop_windows,
    teastore_placements,
)
from repro.apps.elgg import elgg_application


class TestPlacements:
    def test_teastore_distribution_matches_paper(self):
        placements = teastore_placements()
        assert placements["recommender"][0].node == "M1"
        assert placements["auth"][0].node == "M1"
        assert placements["auth"][0].cpu_limit == 2.0
        assert placements["db"][0].node == "M2"
        assert placements["webui"][0].node == "M3"

    def test_sockshop_distribution_matches_paper(self):
        placements = sockshop_placements()
        assert placements["front-end"][0].node == "M1"
        assert placements["edge-router"][0].node == "M2"
        assert placements["user-db"][0].node == "M3"
        assert placements["carts-db"][0].cpu_limit == 2.0

    def test_nodes_not_oversubscribed(self):
        """Assigned CPU quotas fit each machine's core count."""
        nodes = evaluation_nodes()
        totals = {name: 0.0 for name in nodes}
        for placements in (teastore_placements(), sockshop_placements()):
            for service_placements in placements.values():
                for placement in service_placements:
                    totals[placement.node] += placement.cpu_limit or 0.0
        for name, total in totals.items():
            assert total <= nodes[name].cores, (name, total)


class TestCalibration:
    def test_elgg_threshold_near_frontend_capacity(self):
        threshold = calibrate_application(
            elgg_application,
            elgg_placements(),
            {"host": evaluation_nodes()["M1"]},
            duration=200,
            max_rate=150.0,
            seed=0,
        )
        # Elgg front-end: 1 core / 0.055 s per request -> ~18 req/s knee.
        assert 12.0 < threshold < 25.0


class TestElggScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return elgg_scenario(duration=500, seed=0)

    def test_saturation_ratio_majority(self, scenario):
        """The paper's Elgg test set is ~75% saturated (section 4.1.2)."""
        assert 0.55 < scenario.y_true.mean() < 0.9

    def test_three_containers(self, scenario):
        assert len(scenario.containers()) == 3

    def test_utilization_series_aligned(self, scenario):
        for cpu, mem in scenario.utilizations():
            assert cpu.shape == scenario.y_true.shape
            assert mem.shape == scenario.y_true.shape

    def test_detector_comparison_shape(self, scenario, tiny_model):
        comparison = evaluate_detectors(scenario, tiny_model, k=2)
        assert set(comparison.rows) == {
            "cpu", "mem", "cpu-or-mem", "cpu-and-mem", "monitorless"
        }
        table = comparison.table()
        assert len(table) == 5
        assert all("F1_2" in row for row in table)

    def test_cpu_baseline_strong_on_elgg(self, scenario, tiny_model):
        """The front-end is CPU-bound: the tuned CPU rule must do well."""
        comparison = evaluate_detectors(scenario, tiny_model, k=2)
        assert comparison.rows["cpu"].f1 > 0.9


class TestMultitenantScenario:
    @pytest.fixture(scope="class")
    def scenarios(self):
        return multitenant_scenario(duration=1400, seed=0)

    def test_both_apps_share_the_run(self, scenarios):
        tea, sock = scenarios
        assert tea.result is sock.result
        assert len(tea.containers()) == 7
        assert len(sock.containers()) == 14

    def test_teastore_saturation_is_rare(self, scenarios):
        tea, _ = scenarios
        # The paper reports ~2.9%; sizing keeps it well under 25%.
        assert 0.0 < tea.y_true.mean() < 0.25

    def test_sockshop_windows_indices(self):
        windows = sockshop_windows(7000)
        assert len(windows) == 3 * 999
        assert windows.min() >= 1000
        assert windows.max() < 7000

    def test_sockshop_saturates_in_windows_only(self, scenarios):
        _, sock = scenarios
        windows = sockshop_windows(len(sock.workload))
        outside = np.setdiff1d(np.arange(len(sock.y_true)), windows)
        assert sock.y_true[outside].mean() < 0.05
