"""Tests for the cluster substrate: queueing, cgroups, nodes, engine."""

import numpy as np
import pytest

from repro.apps.solr import solr_application
from repro.cluster.cgroup import CFS_PERIODS_PER_SECOND, CpuCgroup, MemoryCgroup
from repro.cluster.container import Container, ContainerTick
from repro.cluster.node import MACHINES, Node, NodeSpec, fair_share
from repro.cluster.queueing import (
    BacklogQueue,
    erlang_c,
    mm1_response_time,
    mmc_response_time,
    utilization,
)
from repro.cluster.resources import GIB, Resource
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.workloads.patterns import constant, linear_ramp


class TestQueueing:
    def test_utilization_basic(self):
        assert utilization(5.0, 10.0) == 0.5
        assert utilization(0.0, 0.0) == 0.0

    def test_mm1_grows_hyperbolically(self):
        low = mm1_response_time(0.01, 0.1)
        high = mm1_response_time(0.01, 0.9)
        assert np.isclose(low, 0.01 / 0.9)
        assert np.isclose(high, 0.1)

    def test_mm1_capped_at_saturation(self):
        assert mm1_response_time(0.01, 5.0, max_factor=60.0) == 0.6

    def test_erlang_c_bounds(self):
        assert erlang_c(4, 0.0) == 0.0
        assert erlang_c(4, 4.0) == 1.0
        assert 0.0 < erlang_c(4, 2.0) < 1.0

    def test_erlang_c_monotone_in_load(self):
        values = [erlang_c(8, load) for load in (1.0, 3.0, 5.0, 7.0)]
        assert values == sorted(values)

    def test_mmc_more_servers_less_waiting(self):
        slow = mmc_response_time(0.1, 8.0, servers=1)
        fast = mmc_response_time(0.1, 8.0, servers=4)
        assert fast <= slow

    def test_backlog_queue_completes_under_capacity(self):
        queue = BacklogQueue()
        completed, dropped = queue.offer(10.0, 100.0)
        assert completed == 10.0 and dropped == 0.0
        assert queue.backlog == 0.0

    def test_backlog_accumulates_and_drains(self):
        queue = BacklogQueue()
        queue.offer(100.0, 60.0)
        assert queue.backlog == 40.0
        completed, _ = queue.offer(0.0, 60.0)
        assert completed == 40.0
        assert queue.backlog == 0.0

    def test_drops_beyond_patience(self):
        queue = BacklogQueue(timeout=2.0)
        _, dropped = queue.offer(1000.0, 10.0)
        # Sustainable backlog is 2 s x 10/s = 20; the rest times out.
        assert dropped == 1000.0 - 10.0 - 20.0
        assert queue.backlog == 20.0

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            BacklogQueue().offer(-1.0, 10.0)
        with pytest.raises(ValueError):
            mm1_response_time(0.1, -0.5)


class TestCpuCgroup:
    def test_unlimited_never_throttles(self):
        account = CpuCgroup(None).account(10.0, node_share=48.0)
        assert account.nr_throttled == 0
        assert account.used_cores == 10.0

    def test_demand_over_quota_throttles(self):
        cgroup = CpuCgroup(2.0)
        account = cgroup.account(4.0, node_share=48.0)
        assert account.used_cores == 2.0
        assert account.nr_throttled == CFS_PERIODS_PER_SECOND

    def test_mild_overshoot_partial_throttling(self):
        account = CpuCgroup(2.0).account(2.5, node_share=48.0)
        assert 0 < account.nr_throttled < CFS_PERIODS_PER_SECOND

    def test_quota_utilization_relative_to_quota(self):
        account = CpuCgroup(2.0).account(1.0, node_share=48.0)
        assert np.isclose(account.quota_utilization, 50.0)

    def test_node_share_limits_unquota(self):
        account = CpuCgroup(None).account(10.0, node_share=4.0)
        assert account.used_cores == 4.0

    def test_invalid_quota(self):
        with pytest.raises(ValueError):
            CpuCgroup(0.0)


class TestMemoryCgroup:
    def test_unlimited_fully_resident(self):
        account = MemoryCgroup(None).account(1e9, 10e9, 1e6)
        assert account.resident_working_set == 10e9
        assert account.page_in_bytes == 0.0

    def test_limit_causes_page_in(self):
        # 8 GB limit, 1 GB base -> 7 GB of a 14 GB working set resident.
        account = MemoryCgroup(8 * GIB).account(1 * GIB, 14 * GIB, 1e6)
        assert np.isclose(account.resident_working_set, 7 * GIB)
        assert np.isclose(account.page_in_bytes, 0.5e6)

    def test_limit_utilization_capped(self):
        account = MemoryCgroup(4 * GIB).account(8 * GIB, 0.0, 0.0)
        assert account.limit_utilization == 100.0

    def test_negative_inputs(self):
        with pytest.raises(ValueError):
            MemoryCgroup(1e9).account(-1.0, 0.0, 0.0)


class TestNode:
    def test_fair_share_undersubscribed_grants_full(self):
        demands = np.array([1.0, 2.0])
        assert np.allclose(fair_share(demands, 10.0), demands)

    def test_fair_share_oversubscribed_proportional(self):
        shares = fair_share(np.array([6.0, 2.0]), 4.0)
        assert np.allclose(shares, [3.0, 1.0])

    def test_fair_share_rejects_negative(self):
        with pytest.raises(ValueError):
            fair_share(np.array([-1.0]), 4.0)

    def test_machine_inventory(self):
        assert MACHINES["training"].cores == 48
        assert MACHINES["M1"].cores == 10
        assert MACHINES["M2"].cores == 12
        assert MACHINES["M3"].cores == 8
        assert MACHINES["M3"].os == "ubuntu-16.04"

    def test_container_placement_bookkeeping(self):
        node = Node(spec=MACHINES["M1"])
        container = Container(name="c", service="s", application="a")
        node.add_container(container)
        assert container.node == "M1"
        with pytest.raises(ValueError, match="already"):
            node.add_container(container)
        node.remove_container(container)
        assert container.node is None

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            NodeSpec(name="bad", cores=0, memory_bytes=1.0,
                     disk_bandwidth=1.0, network_bandwidth=1.0)


class TestSimulationEngine:
    def _solr_sim(self, cpu_limit=None):
        sim = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        sim.deploy(
            solr_application(),
            {"solr": [Placement(node="training", cpu_limit=cpu_limit)]},
        )
        return sim

    def test_throughput_tracks_light_load(self):
        sim = self._solr_sim()
        result = sim.run({"solr": constant(30, 100.0)})
        throughput = result.kpi("solr", "throughput")
        assert np.allclose(throughput, 100.0, rtol=0.05)

    def test_throughput_caps_at_capacity(self):
        sim = self._solr_sim()
        result = sim.run({"solr": linear_ramp(300, 1, 1500)})
        # Capacity = 48 cores / 0.06 s per request = 800 req/s.
        assert abs(result.kpi("solr", "throughput").max() - 800.0) < 20.0

    def test_quota_shrinks_capacity(self):
        sim = self._solr_sim(cpu_limit=3.0)
        result = sim.run({"solr": linear_ramp(100, 1, 200)})
        assert abs(result.kpi("solr", "throughput").max() - 50.0) < 5.0

    def test_response_time_elbows_at_saturation(self):
        sim = self._solr_sim()
        result = sim.run({"solr": linear_ramp(200, 1, 1500)})
        rt = result.kpi("solr", "response_time")
        assert rt[-1] > 10 * rt[0]

    def test_deep_saturation_drops_requests(self):
        sim = self._solr_sim()
        result = sim.run({"solr": constant(30, 5000.0)})
        assert result.kpi("solr", "dropped").max() > 0

    def test_interference_reduces_capacity(self):
        """Two CPU-heavy apps on one host squeeze each other."""
        sim = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        a = solr_application()
        a.name = "solr-a"
        b = solr_application()
        b.name = "solr-b"
        sim.deploy(a, {"solr": [Placement(node="training")]})
        sim.deploy(b, {"solr": [Placement(node="training")]})
        result = sim.run({"solr-a": constant(60, 700.0), "solr-b": constant(60, 700.0)})
        # Each alone would handle 700 < 800; together they exceed 48 cores.
        assert result.kpi("solr-a", "throughput")[-1] < 680.0

    def test_replica_scaling_splits_load(self):
        sim = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        sim.deploy(
            solr_application(),
            {"solr": [Placement(node="training", cpu_limit=3.0)]},
        )
        sim.add_replica("solr", "solr", Placement(node="training", cpu_limit=3.0))
        result = sim.run({"solr": constant(40, 90.0)})
        # Two 3-core replicas handle ~100 req/s; one alone caps at 50.
        assert result.kpi("solr", "throughput")[-1] > 85.0

    def test_remove_replica_keeps_minimum(self):
        sim = self._solr_sim()
        with pytest.raises(ValueError, match="at least one"):
            sim.remove_replica("solr", "solr")

    def test_container_ticks_recorded(self):
        sim = self._solr_sim(cpu_limit=3.0)
        result = sim.run({"solr": constant(20, 100.0)})
        container = result.containers[0]
        assert len(container.history) == 20
        tick = container.last()
        assert isinstance(tick, ContainerTick)
        assert tick.cpu.nr_throttled > 0  # demand 6 cores > 3-core quota
        assert tick.bottleneck == str(Resource.CPU)

    def test_missing_placement_rejected(self):
        sim = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        with pytest.raises(ValueError, match="No placement"):
            sim.deploy(solr_application(), {})

    def test_duplicate_application_rejected(self):
        sim = self._solr_sim()
        with pytest.raises(ValueError, match="already deployed"):
            sim.deploy(solr_application(), {"solr": [Placement(node="training")]})

    def test_arrivals_for_unknown_app_rejected(self):
        sim = self._solr_sim()
        with pytest.raises(ValueError, match="undeployed"):
            sim.step({"nope": 10.0})

    def test_node_rename_from_mapping_key(self):
        sim = ClusterSimulation({"host": MACHINES["training"]}, seed=0)
        assert sim.nodes["host"].spec.name == "host"
