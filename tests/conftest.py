"""Shared fixtures: small synthetic classification data and tiny corpora."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def binary_data():
    """A learnable nonlinear binary problem: (X_train, y_train, X_test, y_test)."""
    generator = np.random.default_rng(7)
    n, d = 1200, 12
    X = generator.normal(size=(n, d))
    logits = X[:, 0] + 0.8 * X[:, 1] * X[:, 2] - 0.5 * X[:, 3]
    y = (logits + 0.1 * generator.normal(size=n) > 0).astype(np.int64)
    return X[:900], y[:900], X[900:], y[900:]


@pytest.fixture(scope="session")
def linear_data():
    """A linearly separable problem for the linear models."""
    generator = np.random.default_rng(11)
    n, d = 800, 8
    X = generator.normal(size=(n, d))
    y = (X @ np.arange(1, d + 1) / d > 0).astype(np.int64)
    return X[:600], y[:600], X[600:], y[600:]


@pytest.fixture(scope="session")
def tiny_corpus():
    """A miniature Table-1 training corpus (a few runs, short duration)."""
    from repro.datasets.configs import run_by_id
    from repro.datasets.generate import build_training_corpus

    runs = [run_by_id(i) for i in (1, 2, 7, 9, 12, 24)]
    return build_training_corpus(
        duration=80, calibration_duration=100, seed=3, runs=runs
    )


@pytest.fixture(scope="session")
def tiny_model(tiny_corpus):
    """A MonitorlessModel trained on the miniature corpus."""
    from repro.core.features.pipeline import PipelineConfig
    from repro.core.model import MonitorlessModel

    model = MonitorlessModel(
        pipeline_config=PipelineConfig(temporal_windows=(1, 5)),
        classifier_params={"n_estimators": 15},
        random_state=0,
    )
    model.fit(tiny_corpus.X, tiny_corpus.meta, tiny_corpus.y, tiny_corpus.groups)
    return model
