"""End-to-end integration tests: train on Table-1 data, evaluate on
unseen applications, close the autoscaling loop."""

import numpy as np
import pytest

from repro.core.aggregation import aggregate_or
from repro.core.evaluation import lagged_confusion
from repro.datasets.experiments import elgg_scenario, evaluate_detectors
from repro.ml.metrics import f1_score


class TestTrainEvaluateTransfer:
    """The paper's central claim: a model trained only on Table-1
    services detects saturation of applications it has never seen."""

    @pytest.fixture(scope="class")
    def elgg(self):
        return elgg_scenario(duration=400, seed=1)

    def test_transfer_to_unseen_application(self, tiny_model, elgg):
        predictions = elgg.instance_predictions(tiny_model)
        app_prediction = aggregate_or(predictions)
        confusion = lagged_confusion(elgg.y_true, app_prediction, k=2)
        # Trained on 6 tiny runs only; must still comfortably beat the
        # all-positive strawman on an application it never saw.
        all_positive = lagged_confusion(
            elgg.y_true, np.ones_like(elgg.y_true), k=2
        )
        assert confusion.accuracy > 0.75
        assert confusion.accuracy > all_positive.accuracy

    def test_monitorless_close_to_tuned_cpu_baseline(self, tiny_model, elgg):
        comparison = evaluate_detectors(elgg, tiny_model, k=2)
        cpu = comparison.rows["cpu"].f1
        monitorless = comparison.rows["monitorless"].f1
        # The baselines are tuned a-posteriori on the test data.  With the
        # full training corpus monitorless lands within ~0.01 F1 of the
        # optimal CPU rule (see benchmarks/bench_table5_elgg.py); the tiny
        # six-run fixture used here only supports a coarser bound.
        assert monitorless > cpu - 0.2

    def test_fn_averse_operating_point(self, tiny_model, elgg):
        comparison = evaluate_detectors(elgg, tiny_model, k=2)
        confusion = comparison.rows["monitorless"]
        # Threshold 0.4 trades FPs for FNs (section 4).
        assert confusion.fn <= max(3, confusion.fp)


class TestModelInternals:
    def test_training_f1_high(self, tiny_model, tiny_corpus):
        predictions = tiny_model.predict(
            tiny_corpus.X, tiny_corpus.meta, tiny_corpus.groups
        )
        assert f1_score(tiny_corpus.y, predictions) > 0.9

    def test_interaction_features_dominate_importances(self, tiny_model):
        """Table 4: nearly all top features are x-products."""
        top = tiny_model.feature_importances(top=15)
        product_share = np.mean([" x " in name for name, _ in top])
        assert product_share > 0.4

    def test_engineered_feature_count_substantial(self, tiny_model):
        # 1040 raw metrics engineer into hundreds of features (the paper
        # reaches 4492 before its second reduction).
        assert tiny_model.n_engineered_features_ > 100


class TestClosedLoopSmoke:
    def test_monitorless_autoscaling_end_to_end(self, tiny_model):
        from repro.apps.teastore import teastore_application
        from repro.cluster.simulation import ClusterSimulation, Placement
        from repro.datasets.experiments import evaluation_nodes, teastore_placements
        from repro.orchestrator.autoscaler import ScalingRules
        from repro.orchestrator.loop import Orchestrator
        from repro.orchestrator.policies import MonitorlessPolicy
        from repro.telemetry.agent import TelemetryAgent
        from repro.workloads.patterns import step_levels

        simulation = ClusterSimulation(evaluation_nodes(), seed=0)
        simulation.deploy(teastore_application(), teastore_placements())
        policy = MonitorlessPolicy(tiny_model, TelemetryAgent(seed=0), window=8)
        rules = ScalingRules(
            placements={
                "auth": Placement(node="M2", cpu_limit=2.0),
                "recommender": Placement(node="M2", cpu_limit=1.0),
                "webui": Placement(node="M2", cpu_limit=1.0),
            },
            replica_lifespan=40,
        )
        orchestrator = Orchestrator(simulation, "teastore", policy, rules)
        workload = step_levels([15, 40, 15], [100.0, 650.0, 100.0])
        result = orchestrator.run({"teastore": workload})
        assert result.duration == 70
        assert result.extra_replicas.max() >= 0  # loop completed
        assert np.all(np.isfinite(result.response_time))
