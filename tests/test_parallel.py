"""Tests for the :mod:`repro.parallel` execution layer.

The load-bearing property is the determinism contract: for a fixed
``random_state``, forest predictions, grid-search selections and the
training corpus must be **bitwise identical** across ``n_jobs`` values.
``REPRO_TEST_JOBS`` selects the worker count exercised against serial
(default 2; CI runs a dedicated 2-worker smoke job).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel import (
    WorkerCrashError,
    parallel_map,
    resolve_n_jobs,
    spawn_seeds,
)
from repro.parallel.jobs import available_cores

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))


# ---------------------------------------------------------------------------
# Task functions must be module-level (they are pickled by name).
# ---------------------------------------------------------------------------
def _scaled_sum_task(item, arrays):
    return float(arrays["X"].sum()) * item


def _draw_task(item, arrays):
    (seed,) = item
    return float(np.random.default_rng(seed).normal())


def _boom_task(item, arrays):
    raise ValueError(f"boom on {item}")


def _exit_task(item, arrays):
    os._exit(3)


def _exit_in_worker_task(item, arrays):
    # Dies only inside a pool worker; the serial-rescue re-run in the
    # parent computes the real result.
    from repro.parallel import in_worker

    if in_worker():
        os._exit(3)
    return float(arrays["X"].sum()) * item


def _write_task(item, arrays):
    arrays["X"][0] = item


def _nested_task(item, arrays):
    # A parallel_map issued from inside a worker must degrade to serial
    # instead of forking a pool-within-a-pool.
    return parallel_map(_scaled_sum_task, [item, item + 1], n_jobs=2,
                        shared={"X": np.ones((2, 2))})


class TestResolveNJobs:
    def test_none_is_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_positive_passthrough(self):
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(4) == 4

    def test_minus_one_is_all_cores(self):
        assert resolve_n_jobs(-1) == available_cores()

    def test_other_negatives_leave_cores_free(self):
        assert resolve_n_jobs(-2) == max(1, available_cores() - 1)

    def test_zero_rejected(self):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(0)

    @pytest.mark.parametrize("bad", [1.5, "2", True])
    def test_non_int_rejected(self, bad):
        with pytest.raises(ValueError, match="n_jobs"):
            resolve_n_jobs(bad)


class TestSpawnSeeds:
    def test_deterministic_for_int_state(self):
        a = spawn_seeds(7, 4)
        b = spawn_seeds(7, 4)
        assert len(a) == 4
        for left, right in zip(a, b):
            assert left.entropy == right.entropy
            assert left.spawn_key == right.spawn_key

    def test_prefix_stable_in_count(self):
        # The first k children must not depend on how many are spawned.
        short = spawn_seeds(3, 2)
        long = spawn_seeds(3, 6)
        for left, right in zip(short, long):
            assert left.spawn_key == right.spawn_key

    def test_generator_consumes_one_draw(self):
        consumed = np.random.default_rng(11)
        spawn_seeds(consumed, 5)
        reference = np.random.default_rng(11)
        reference.integers(0, 2**63 - 1)
        # After spawning, both generators continue from the same state.
        assert consumed.integers(0, 1000) == reference.integers(0, 1000)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_seeds(0, -1)


class TestParallelMap:
    def test_results_in_item_order(self):
        shared = {"X": np.ones((3, 2))}
        items = list(range(10))
        expected = [6.0 * item for item in items]
        assert parallel_map(
            _scaled_sum_task, items, n_jobs=1, shared=shared
        ) == expected
        assert parallel_map(
            _scaled_sum_task, items, n_jobs=JOBS, shared=shared
        ) == expected

    def test_chunking_does_not_change_results(self):
        shared = {"X": np.arange(6.0).reshape(2, 3)}
        items = list(range(7))
        baseline = parallel_map(_scaled_sum_task, items, n_jobs=1,
                                shared=shared)
        for chunk_size in (1, 2, 5):
            assert parallel_map(
                _scaled_sum_task, items, n_jobs=JOBS, shared=shared,
                chunk_size=chunk_size,
            ) == baseline

    def test_empty_items(self):
        assert parallel_map(_scaled_sum_task, [], n_jobs=JOBS) == []

    def test_seeded_tasks_match_serial(self):
        tasks = [(seed,) for seed in spawn_seeds(42, 8)]
        assert parallel_map(_draw_task, tasks, n_jobs=JOBS) == parallel_map(
            _draw_task, tasks, n_jobs=1
        )

    def test_task_exception_propagates(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_boom_task, [1, 2, 3], n_jobs=JOBS)

    def test_worker_death_raises_instead_of_hanging(self):
        with pytest.raises(WorkerCrashError, match="died"):
            parallel_map(_exit_task, [1, 2, 3], n_jobs=JOBS)

    def test_crashed_chunks_rescued_serially(self):
        """``on_crash="serial"`` re-runs every chunk lost to a worker
        death in the parent process instead of raising."""
        shared = {"X": np.ones((3, 2))}
        items = list(range(6))
        results = parallel_map(
            _exit_in_worker_task, items, n_jobs=JOBS, shared=shared,
            on_crash="serial",
        )
        assert results == [6.0 * item for item in items]

    def test_on_crash_serial_still_propagates_task_errors(self):
        # The rescue covers worker *deaths*; an exception the task
        # itself raises is a bug and must propagate either way.
        with pytest.raises(ValueError, match="boom"):
            parallel_map(
                _boom_task, [1, 2, 3], n_jobs=JOBS, on_crash="serial"
            )

    def test_invalid_on_crash_rejected(self):
        with pytest.raises(ValueError, match="on_crash"):
            parallel_map(_scaled_sum_task, [1], n_jobs=1, on_crash="retry")

    def test_shared_arrays_are_read_only_in_workers(self):
        with pytest.raises(ValueError, match="read-only"):
            parallel_map(
                _write_task, [1, 2], n_jobs=JOBS,
                shared={"X": np.zeros(4)},
            )

    def test_nested_call_degrades_to_serial(self):
        results = parallel_map(_nested_task, [1, 2], n_jobs=JOBS)
        assert results == [[4.0, 8.0], [8.0, 12.0]]


class TestForestAcrossJobs:
    def test_fit_and_predict_bitwise_equal(self, binary_data):
        from repro.ml.forest import RandomForestClassifier

        X_train, y_train, X_test, _ = binary_data
        serial = RandomForestClassifier(
            n_estimators=12, random_state=42, n_jobs=1
        ).fit(X_train, y_train)
        workers = RandomForestClassifier(
            n_estimators=12, random_state=42, n_jobs=JOBS
        ).fit(X_train, y_train)
        assert np.array_equal(
            serial.predict_proba(X_test), workers.predict_proba(X_test)
        )
        assert np.array_equal(
            serial.feature_importances_, workers.feature_importances_
        )

    def test_mixed_jobs_between_fit_and_predict(self, binary_data):
        from repro.ml.forest import RandomForestClassifier

        X_train, y_train, X_test, _ = binary_data
        forest = RandomForestClassifier(
            n_estimators=10, random_state=0, n_jobs=1
        ).fit(X_train, y_train)
        serial_proba = forest.predict_proba(X_test)
        forest.n_jobs = JOBS
        assert np.array_equal(serial_proba, forest.predict_proba(X_test))

    def test_subsample_weighting_bitwise_equal(self, binary_data):
        from repro.ml.forest import RandomForestClassifier

        X_train, y_train, X_test, _ = binary_data
        probas = [
            RandomForestClassifier(
                n_estimators=6, class_weight="subsample", random_state=5,
                n_jobs=jobs,
            ).fit(X_train, y_train).predict_proba(X_test)
            for jobs in (1, JOBS)
        ]
        assert np.array_equal(probas[0], probas[1])

    def test_proba_matches_per_tree_reference(self, binary_data):
        # The vectorized vote accumulation must agree with the naive
        # per-tree predict_proba average it replaced.
        from repro.ml.forest import RandomForestClassifier

        X_train, y_train, X_test, _ = binary_data
        forest = RandomForestClassifier(n_estimators=8, random_state=1).fit(
            X_train, y_train
        )
        reference = np.zeros((len(X_test), 2))
        for tree in forest.estimators_:
            reference[:, tree.classes_] += tree.predict_proba(X_test)
        reference /= len(forest.estimators_)
        assert np.allclose(forest.predict_proba(X_test), reference)


class TestModelSelectionAcrossJobs:
    def test_cross_val_score_bitwise_equal(self, binary_data):
        from repro.ml.forest import RandomForestClassifier
        from repro.ml.model_selection import cross_val_score

        X_train, y_train, _, _ = binary_data
        estimator = RandomForestClassifier(n_estimators=5, random_state=0)
        serial = cross_val_score(estimator, X_train, y_train, n_jobs=1)
        workers = cross_val_score(estimator, X_train, y_train, n_jobs=JOBS)
        assert np.array_equal(serial, workers)

    def test_grid_search_selects_identically(self, binary_data):
        from repro.ml.forest import RandomForestClassifier
        from repro.ml.model_selection import GridSearchCV, KFold

        X_train, y_train, X_test, _ = binary_data
        grid = {"max_depth": [3, 6], "criterion": ["gini", "entropy"]}
        searches = [
            GridSearchCV(
                RandomForestClassifier(n_estimators=4, random_state=0),
                grid,
                cv=KFold(n_splits=3),
                scoring="f1",
                n_jobs=jobs,
            ).fit(X_train, y_train)
            for jobs in (1, JOBS)
        ]
        serial, workers = searches
        assert serial.best_params_ == workers.best_params_
        assert serial.best_score_ == workers.best_score_
        for left, right in zip(serial.results_, workers.results_):
            assert left["params"] == right["params"]
            assert np.array_equal(left["scores"], right["scores"])
        assert np.array_equal(
            serial.predict(X_test), workers.predict(X_test)
        )


class TestCorpusAcrossJobs:
    def test_corpus_bitwise_equal(self):
        from repro.datasets.configs import run_by_id
        from repro.datasets.generate import build_training_corpus

        # Runs 5 and 20 form one interference session; run 1 its own.
        runs = [run_by_id(i) for i in (1, 5, 20)]
        corpora = [
            build_training_corpus(
                duration=40, calibration_duration=60, seed=3, runs=runs,
                n_jobs=jobs,
            )
            for jobs in (1, JOBS)
        ]
        serial, workers = corpora
        assert np.array_equal(serial.X, workers.X)
        assert np.array_equal(serial.y, workers.y)
        assert np.array_equal(serial.groups, workers.groups)
        for left, right in zip(serial.runs, workers.runs):
            assert left.config.run_id == right.config.run_id
            assert left.threshold == right.threshold
            assert left.observed_bottleneck == right.observed_bottleneck


class TestCalibrationCache:
    def test_shared_configuration_hits_cache(self):
        from repro.datasets.configs import run_by_id
        from repro.datasets.generate import (
            calibrate_threshold,
            calibration_cache_info,
            clear_calibration_cache,
        )

        clear_calibration_cache()
        # Table-1 runs 3 and 4 are the same app/limit combination under
        # different run ids: one simulated ramp must serve both.
        first = calibrate_threshold(run_by_id(3), duration=60, seed=0)
        assert calibration_cache_info() == {
            "hits": 0, "misses": 1, "size": 1,
        }
        calibrate_threshold(run_by_id(4), duration=60, seed=0)
        assert calibration_cache_info()["hits"] == 1
        assert calibration_cache_info()["size"] == 1

        # A cache hit must reproduce the miss bitwise (noise is applied
        # after the cache, keyed by run id).
        repeat = calibrate_threshold(run_by_id(3), duration=60, seed=0)
        assert repeat[0] == first[0]
        assert np.array_equal(repeat[2], first[2])

    def test_cached_ramp_is_immutable(self):
        from repro.datasets.configs import run_by_id
        from repro.datasets.generate import calibrate_threshold

        _, ramp, _ = calibrate_threshold(run_by_id(3), duration=60, seed=0)
        with pytest.raises(ValueError, match="read-only"):
            ramp[0] = -1.0

    def test_key_distinguishes_different_limits(self):
        from repro.datasets.configs import run_by_id
        from repro.datasets.generate import (
            calibration_cache_info,
            calibrate_threshold,
            clear_calibration_cache,
        )

        clear_calibration_cache()
        calibrate_threshold(run_by_id(24), duration=60, seed=0)
        calibrate_threshold(run_by_id(25), duration=60, seed=0)
        # Same service/limits but different traffic ranges: two entries.
        assert calibration_cache_info() == {
            "hits": 0, "misses": 2, "size": 2,
        }
