"""Tests for the lag-tolerant evaluation metrics (paper section 4)."""

import numpy as np
import pytest

from repro.core.evaluation import (
    LaggedConfusion,
    accuracy_lagged,
    f1_lagged,
    lagged_confusion,
)


class TestPlainConfusion:
    def test_k0_equals_ordinary_confusion(self):
        y_true = [0, 1, 1, 0, 1]
        y_pred = [0, 1, 0, 1, 1]
        confusion = lagged_confusion(y_true, y_pred, k=0)
        assert (confusion.tn, confusion.fp, confusion.fn, confusion.tp) == (1, 1, 1, 2)

    def test_perfect_prediction(self):
        y = [0, 1, 0, 1]
        confusion = lagged_confusion(y, y, k=2)
        assert confusion.f1 == 1.0 and confusion.accuracy == 1.0


class TestEarlyWarningForgiveness:
    def test_fp_followed_by_saturation_becomes_tn(self):
        # Prediction fires one step early.
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 1]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fp == 0
        assert confusion.tn == 2  # the early FP was forgiven into TN_2

    def test_fp_with_no_upcoming_saturation_stays_fp(self):
        y_true = [0, 0, 0, 0, 0]
        y_pred = [0, 1, 0, 0, 0]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fp == 1

    def test_fp_outside_window_stays_fp(self):
        y_true = [0, 0, 0, 0, 1]
        y_pred = [1, 0, 0, 0, 1]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fp == 1  # saturation arrives at distance 4 > k


class TestEarlyDetectionForgiveness:
    def test_fn_with_preceding_positive_becomes_tp(self):
        y_true = [0, 0, 1, 1]
        y_pred = [0, 1, 1, 0]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fn == 0
        assert confusion.tp == 2

    def test_late_prediction_not_forgiven(self):
        """The asymmetry: a prediction *after* the saturation does not
        rescue the earlier miss (section 4)."""
        y_true = [1, 1, 0, 0]
        y_pred = [0, 1, 0, 0]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fn == 1

    def test_fn_outside_window_stays_fn(self):
        y_true = [0, 0, 0, 0, 1]
        y_pred = [1, 0, 0, 0, 0]
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.fn == 1


class TestScores:
    def test_f1_matches_formula(self):
        confusion = LaggedConfusion(tn=10, fp=2, fn=3, tp=5, k=2)
        assert np.isclose(confusion.f1, 10 / 15)

    def test_accuracy_matches_formula(self):
        confusion = LaggedConfusion(tn=10, fp=2, fn=3, tp=5, k=2)
        assert np.isclose(confusion.accuracy, 15 / 20)

    def test_empty_degenerate(self):
        confusion = LaggedConfusion(tn=0, fp=0, fn=0, tp=0, k=2)
        assert confusion.f1 == 0.0 and confusion.accuracy == 0.0

    def test_as_row_uses_k_in_names(self):
        row = LaggedConfusion(tn=1, fp=0, fn=0, tp=1, k=3).as_row()
        assert "F1_3" in row and "TN_3" in row

    def test_wrappers(self):
        y_true = [0, 1, 1, 0]
        y_pred = [0, 1, 1, 0]
        assert f1_lagged(y_true, y_pred) == 1.0
        assert accuracy_lagged(y_true, y_pred) == 1.0


class TestValidation:
    def test_rejects_non_binary(self):
        with pytest.raises(ValueError, match="binary"):
            lagged_confusion([0, 2], [0, 1], k=1)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="length"):
            lagged_confusion([0, 1], [0], k=1)

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="k must"):
            lagged_confusion([0], [0], k=-1)

    def test_total_count_preserved(self, rng):
        """Forgiveness moves samples between cells but never loses them."""
        y_true = (rng.random(200) > 0.7).astype(int)
        y_pred = (rng.random(200) > 0.6).astype(int)
        confusion = lagged_confusion(y_true, y_pred, k=2)
        assert confusion.tn + confusion.fp + confusion.fn + confusion.tp == 200

    def test_larger_k_never_hurts(self, rng):
        """More tolerance can only turn FPs/FNs into TNs/TPs."""
        y_true = (rng.random(300) > 0.8).astype(int)
        y_pred = np.roll(y_true, 1)  # systematically early by one
        f1_by_k = [lagged_confusion(y_true, y_pred, k).f1 for k in range(4)]
        assert all(b >= a - 1e-12 for a, b in zip(f1_by_k, f1_by_k[1:]))
