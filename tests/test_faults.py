"""Tests for fault injection and monitorless robustness under faults."""

import subprocess
import sys

import numpy as np
import pytest

from repro.apps.solr import solr_application
from repro.cluster.faults import (
    DiskDegradation,
    FaultSchedule,
    MetricDropout,
    NodeSlowdown,
)
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.telemetry.agent import TelemetryAgent
from repro.workloads.patterns import constant


def solr_sim(seed=0):
    simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=seed)
    simulation.deploy(solr_application(), {"solr": [Placement(node="training")]})
    return simulation


class TestFaultDefinitions:
    def test_slowdown_window(self):
        fault = NodeSlowdown(node="n", factor=0.5, start=10, end=20)
        assert not fault.active(9)
        assert fault.active(10) and fault.active(19)
        assert not fault.active(20)

    def test_slowdown_halves_cores(self):
        fault = NodeSlowdown(node="training", factor=0.5, start=0, end=1)
        degraded = fault.apply(MACHINES["training"])
        assert degraded.cores == 24

    def test_slowdown_keeps_at_least_one_core(self):
        fault = NodeSlowdown(node="n", factor=0.01, start=0, end=1)
        degraded = fault.apply(MACHINES["M3"])
        assert degraded.cores >= 1

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            NodeSlowdown(node="n", factor=0.0, start=0, end=1)
        with pytest.raises(ValueError):
            DiskDegradation(node="n", factor=1.5, start=0, end=1)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            NodeSlowdown(node="n", factor=0.5, start=5, end=5)


class TestFaultSchedule:
    def test_slowdown_reduces_throughput_during_window(self):
        # 600 req/s needs 36 cores; halving the node to 24 saturates it.
        fault = NodeSlowdown(node="training", factor=0.5, start=20, end=40)
        simulation = solr_sim()
        result = FaultSchedule([fault]).run(
            simulation, {"solr": constant(60, 600.0)}
        )
        throughput = result.kpi("solr", "throughput")
        assert throughput[10] == pytest.approx(600.0, rel=0.05)
        assert throughput[30] < 450.0  # degraded window
        assert throughput[55] == pytest.approx(600.0, rel=0.10)  # recovered

    def test_spec_restored_after_run(self):
        fault = NodeSlowdown(node="training", factor=0.5, start=0, end=10)
        simulation = solr_sim()
        FaultSchedule([fault]).run(simulation, {"solr": constant(12, 10.0)})
        assert simulation.nodes["training"].spec.cores == 48

    def test_disk_degradation_moves_bottleneck(self):
        from repro.apps.memcache import memcache_application
        from repro.cluster.resources import GIB

        simulation = ClusterSimulation({"training": MACHINES["training"]}, seed=0)
        simulation.deploy(
            memcache_application(),
            {"memcache": [Placement(node="training", memory_limit=8 * GIB)]},
        )
        fault = DiskDegradation(node="training", factor=0.2, start=10, end=30)
        result = FaultSchedule([fault]).run(
            simulation, {"memcache": constant(40, 30e3)}
        )
        container = result.containers[0]
        during = container.history[20]
        after = container.history[35]
        assert during.max_utilization > after.max_utilization

    def test_unknown_node_rejected(self):
        fault = NodeSlowdown(node="ghost", factor=0.5, start=0, end=1)
        with pytest.raises(ValueError, match="unknown nodes"):
            FaultSchedule([fault]).run(solr_sim(), {"solr": constant(3, 1.0)})

    def test_spec_restored_when_step_raises_mid_run(self):
        """A workload that blows up mid-run must not leave the degraded
        node spec installed (regression: the restore loop used to run
        only after a *successful* run)."""
        fault = NodeSlowdown(node="training", factor=0.5, start=0, end=12)
        simulation = solr_sim()
        # float(None) raises at tick 6, while the slowdown is active and
        # the degraded 24-core spec is installed.
        workload = [10.0] * 6 + [None] + [10.0] * 5
        with pytest.raises(TypeError):
            FaultSchedule([fault]).run(simulation, {"solr": workload})
        assert simulation.nodes["training"].spec.cores == 48


class TestMetricDropout:
    def _run(self):
        simulation = solr_sim()
        return simulation.run({"solr": constant(40, 300.0)})

    def test_zero_probability_is_identity(self):
        result = self._run()
        agent = TelemetryAgent(seed=0)
        wrapped = MetricDropout(agent, probability=0.0)
        a = agent.instance_matrix(result.containers[0], result.nodes)
        b = wrapped.instance_matrix(result.containers[0], result.nodes)
        assert np.array_equal(a, b)

    def test_dropout_holds_previous_value(self):
        result = self._run()
        wrapped = MetricDropout(TelemetryAgent(seed=0), probability=0.4, seed=1)
        matrix = wrapped.instance_matrix(result.containers[0], result.nodes)
        clean = TelemetryAgent(seed=0).instance_matrix(
            result.containers[0], result.nodes
        )
        changed = matrix != clean
        assert changed.any()  # some readings replaced
        # Every replaced reading equals the wrapped matrix's previous row.
        rows, cols = np.nonzero(changed)
        assert np.allclose(matrix[rows, cols], matrix[rows - 1, cols])

    def test_deterministic(self):
        result = self._run()
        a = MetricDropout(TelemetryAgent(seed=0), 0.3, seed=5).instance_matrix(
            result.containers[0], result.nodes
        )
        b = MetricDropout(TelemetryAgent(seed=0), 0.3, seed=5).instance_matrix(
            result.containers[0], result.nodes
        )
        assert np.array_equal(a, b)

    def test_model_survives_dropout(self, tiny_model):
        """Predictions under 20% missing metrics stay mostly consistent
        with the clean predictions (robustness smoke check)."""
        result = self._run()
        agent = TelemetryAgent(seed=0)
        meta = agent.catalog.feature_meta()
        clean = tiny_model.predict(
            agent.instance_matrix(result.containers[0], result.nodes), meta
        )
        noisy_agent = MetricDropout(agent, probability=0.2, seed=2)
        noisy = tiny_model.predict(
            noisy_agent.instance_matrix(result.containers[0], result.nodes), meta
        )
        assert np.mean(clean == noisy) > 0.8

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            MetricDropout(TelemetryAgent(seed=0), probability=1.5)
        with pytest.raises(ValueError):
            MetricDropout(TelemetryAgent(seed=0), probability=-0.1)

    def test_total_dropout_freezes_after_first_row(self):
        """probability=1.0 is the degenerate blackout: every reading
        after the first repeats row 0."""
        result = self._run()
        wrapped = MetricDropout(TelemetryAgent(seed=0), probability=1.0, seed=3)
        matrix = wrapped.instance_matrix(result.containers[0], result.nodes)
        assert np.array_equal(
            matrix, np.tile(matrix[0], (matrix.shape[0], 1))
        )

    def test_dropout_identical_across_hashseed_values(self, tmp_path):
        """Dropout masks must be bitwise identical in processes with
        different ``PYTHONHASHSEED`` values (regression: the RNG used to
        be seeded via Python's salted ``hash()``, so 'deterministic
        given the seed' was false across runs and pool workers)."""
        import os

        script = tmp_path / "dropout_digest.py"
        script.write_text(
            "import hashlib, types\n"
            "import numpy as np\n"
            "from repro.cluster.faults import MetricDropout\n"
            "dropout = MetricDropout(\n"
            "    types.SimpleNamespace(catalog=None), probability=0.3, seed=7\n"
            ")\n"
            "matrix = np.arange(600, dtype=np.float64).reshape(30, 20)\n"
            "out = dropout._apply_dropout(matrix, 'container-3')\n"
            "print(hashlib.sha256(out.tobytes()).hexdigest())\n"
        )
        import repro

        src_dir = os.path.dirname(os.path.dirname(repro.__file__))
        digests = []
        for hashseed in ("0", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=hashseed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in (src_dir, env.get("PYTHONPATH")) if p
            )
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            digests.append(proc.stdout.strip())
        assert digests[0] == digests[1]
        # ... and the in-process result matches both.
        import hashlib
        import types

        dropout = MetricDropout(
            types.SimpleNamespace(catalog=None), probability=0.3, seed=7
        )
        matrix = np.arange(600, dtype=np.float64).reshape(30, 20)
        local = hashlib.sha256(
            dropout._apply_dropout(matrix, "container-3").tobytes()
        ).hexdigest()
        assert local == digests[0]
