"""Tests for metrics and model selection."""

import numpy as np
import pytest

from repro.ml.forest import RandomForestClassifier
from repro.ml.linear import LogisticRegression
from repro.ml.metrics import (
    accuracy_score,
    classification_report,
    confusion_matrix,
    f1_score,
    log_loss,
    precision_score,
    recall_score,
    roc_auc_score,
)
from repro.ml.model_selection import (
    GridSearchCV,
    GroupKFold,
    KFold,
    ParameterGrid,
    cross_val_score,
    train_test_split,
)


class TestMetrics:
    def test_accuracy(self):
        assert accuracy_score([1, 0, 1, 1], [1, 0, 0, 1]) == 0.75

    def test_perfect_f1(self):
        assert f1_score([1, 0, 1], [1, 0, 1]) == 1.0

    def test_f1_counts_match_definition(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 1, 0, 1]
        # TP=2, FP=1, FN=1 -> F1 = 4/6
        assert np.isclose(f1_score(y_true, y_pred), 4 / 6)

    def test_f1_zero_when_no_positives_predicted_or_present(self):
        assert f1_score([0, 0], [0, 0]) == 0.0

    def test_precision_recall(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 1, 1, 0]
        assert precision_score(y_true, y_pred) == 2 / 3
        assert recall_score(y_true, y_pred) == 1.0

    def test_confusion_matrix_layout(self):
        matrix = confusion_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        assert matrix.tolist() == [[1, 1], [0, 2]]

    def test_classification_report_keys(self):
        report = classification_report([0, 1], [0, 1])
        assert {"accuracy", "precision", "recall", "f1", "tp", "fp", "fn", "tn"} <= set(
            report
        )

    def test_log_loss_penalizes_confident_errors(self):
        good = log_loss([1, 0], [0.9, 0.1])
        bad = log_loss([1, 0], [0.1, 0.9])
        assert bad > good

    def test_roc_auc_perfect_and_random(self):
        assert roc_auc_score([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0
        assert np.isclose(roc_auc_score([0, 1], [0.5, 0.5]), 0.5)

    def test_roc_auc_single_class_raises(self):
        with pytest.raises(ValueError, match="single class"):
            roc_auc_score([1, 1], [0.5, 0.6])

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            accuracy_score([1, 0], [1])


class TestKFold:
    def test_folds_partition_data(self):
        folds = list(KFold(n_splits=4).split(np.zeros(20)))
        assert len(folds) == 4
        all_valid = np.concatenate([valid for _, valid in folds])
        assert sorted(all_valid.tolist()) == list(range(20))

    def test_train_valid_disjoint(self):
        for train, valid in KFold(n_splits=3).split(np.zeros(9)):
            assert not set(train) & set(valid)

    def test_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=5).split(np.zeros(3)))

    def test_shuffle_changes_order(self):
        plain = [v.tolist() for _, v in KFold(3).split(np.zeros(12))]
        shuffled = [
            v.tolist()
            for _, v in KFold(3, shuffle=True, random_state=0).split(np.zeros(12))
        ]
        assert plain != shuffled


class TestGroupKFold:
    def test_groups_never_split(self):
        groups = np.repeat(np.arange(6), 5)
        for train, valid in GroupKFold(n_splits=3).split(np.zeros(30), groups=groups):
            assert not set(groups[train]) & set(groups[valid])

    def test_paper_shape_20_train_5_valid(self):
        """25 runs, 5 folds: each fold validates on 5 runs (section 3.4)."""
        groups = np.repeat(np.arange(25), 4)
        for train, valid in GroupKFold(n_splits=5).split(np.zeros(100), groups=groups):
            assert len(set(groups[valid])) == 5
            assert len(set(groups[train])) == 20

    def test_requires_groups(self):
        with pytest.raises(ValueError, match="groups"):
            list(GroupKFold(2).split(np.zeros(4)))

    def test_too_few_groups(self):
        with pytest.raises(ValueError, match="groups"):
            list(GroupKFold(3).split(np.zeros(4), groups=[0, 0, 1, 1]))


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.arange(100).reshape(-1, 1)
        X_train, X_test = train_test_split(X, test_size=0.2, random_state=0)
        assert len(X_test) == 20 and len(X_train) == 80

    def test_multiple_arrays_aligned(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        X_train, X_test, y_train, y_test = train_test_split(
            X, y, test_size=0.3, random_state=1
        )
        assert np.array_equal(X_train.ravel(), y_train)
        assert np.array_equal(X_test.ravel(), y_test)


class TestGridSearch:
    def test_parameter_grid_cartesian_product(self):
        grid = ParameterGrid({"a": [1, 2], "b": ["x", "y", "z"]})
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in list(grid)

    def test_grid_search_selects_better_C(self, linear_data):
        X_train, y_train, _, _ = linear_data
        search = GridSearchCV(
            estimator=LogisticRegression(max_iter=10, random_state=0),
            param_grid={"C": [1e-6, 1.0]},
            cv=KFold(3),
            scoring="f1",
        ).fit(X_train, y_train)
        assert search.best_params_["C"] == 1.0
        assert len(search.results_) == 2

    def test_best_estimator_is_refit(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        search = GridSearchCV(
            estimator=LogisticRegression(max_iter=10, random_state=0),
            param_grid={"C": [1.0]},
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, search.predict(X_test)) > 0.85

    def test_cross_val_score_grouped(self, binary_data):
        X_train, y_train, _, _ = binary_data
        groups = np.arange(len(y_train)) % 6
        scores = cross_val_score(
            RandomForestClassifier(n_estimators=5, random_state=0),
            X_train,
            y_train,
            cv=GroupKFold(3),
            groups=groups,
        )
        assert scores.shape == (3,)
        assert np.all(scores > 0.7)
