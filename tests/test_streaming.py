"""The streaming data path: ring buffers, per-tick telemetry emission,
the incremental pipeline/model, and the streaming closed loop.

The load-bearing guarantee, asserted throughout: stacking the per-tick
outputs equals the batch transform of the stacked inputs to within
1e-9 -- bitwise for filter-based pipeline configurations (PCA is the
one step where single-row BLAS kernels may differ in the last bits).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.solr import solr_application
from repro.apps.teastore import teastore_application
from repro.cluster.node import MACHINES
from repro.cluster.simulation import ClusterSimulation, Placement
from repro.core.features.meta import Domain, FeatureMeta, Scope
from repro.core.features.pipeline import (
    FeaturePipeline,
    MonitorlessPipeline,
    PipelineConfig,
)
from repro.core.model import MonitorlessModel
from repro.orchestrator.autoscaler import ScalingRules
from repro.orchestrator.loop import Orchestrator
from repro.orchestrator.policies import MonitorlessPolicy, NoScalingPolicy
from repro.telemetry.agent import TelemetryAgent
from repro.telemetry.store import MetricFrame, MetricStream
from repro.workloads.patterns import constant, linear_ramp

TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# MetricStream: the ring buffer under every telemetry stream
# ----------------------------------------------------------------------
class TestMetricStream:
    def test_push_len_total_last(self):
        stream = MetricStream(["a", "b"], capacity=3)
        assert len(stream) == 0 and stream.total == 0
        for i in range(5):
            stream.push(np.array([float(i), float(10 * i)]))
        assert len(stream) == 3
        assert stream.total == 5
        assert np.array_equal(stream.last(), [4.0, 40.0])

    def test_window_is_chronological_across_wrap(self):
        stream = MetricStream(["x"], capacity=4)
        for i in range(10):
            stream.push(np.array([float(i)]))
        assert np.array_equal(stream.window(), [[6.0], [7.0], [8.0], [9.0]])
        assert np.array_equal(stream.window(2), [[8.0], [9.0]])
        assert stream.window(0).shape == (0, 1)

    def test_window_before_wrap(self):
        stream = MetricStream(["x"], capacity=8)
        for i in range(3):
            stream.push(np.array([float(i)]))
        assert np.array_equal(stream.window(), [[0.0], [1.0], [2.0]])

    def test_overdraw_and_bad_inputs_raise(self):
        stream = MetricStream(["a", "b"], capacity=2)
        stream.push(np.zeros(2))
        with pytest.raises(ValueError, match="retained"):
            stream.window(2)
        with pytest.raises(ValueError, match="shape"):
            stream.push(np.zeros(3))
        with pytest.raises(ValueError, match="capacity"):
            MetricStream(["a"], capacity=0)
        with pytest.raises(ValueError, match="unique"):
            MetricStream(["a", "a"], capacity=2)
        with pytest.raises(ValueError, match="empty"):
            MetricStream(["a"], capacity=2).last()

    def test_frame_view(self):
        stream = MetricStream(["a", "b"], capacity=4)
        stream.push(np.array([1.0, 2.0]))
        frame = stream.frame()
        assert isinstance(frame, MetricFrame)
        assert frame.columns == ["a", "b"]
        assert np.array_equal(frame.values, [[1.0, 2.0]])


# ----------------------------------------------------------------------
# Per-tick telemetry emission vs the batch instance matrix
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def solr_sim():
    sim = ClusterSimulation({"training": MACHINES["training"]}, seed=1)
    sim.deploy(
        solr_application(),
        {"solr": [Placement(node="training", cpu_limit=3.0)]},
    )
    sim.run({"solr": linear_ramp(90, 1, 120)})
    return sim


def _solr_container(sim):
    return sim.deployments["solr"].instances["solr"][0].container


class TestTelemetryStream:
    def test_matches_batch_without_counter_conversion(self, solr_sim):
        agent = TelemetryAgent(seed=5, convert_counters=False)
        container = _solr_container(solr_sim)
        batch = agent.instance_matrix(container, solr_sim.nodes)
        stream = agent.open_stream(container, solr_sim.nodes, history=8)
        rows = np.vstack([stream.emit() for _ in range(batch.shape[0])])
        assert np.array_equal(rows, batch)
        # The bounded tail holds exactly the newest rows.
        assert np.array_equal(stream.tail.window(), batch[-8:])

    def test_matches_batch_with_counter_conversion(self, solr_sim):
        agent = TelemetryAgent(seed=5, convert_counters=True)
        container = _solr_container(solr_sim)
        batch = agent.instance_matrix(container, solr_sim.nodes)
        stream = agent.open_stream(container, solr_sim.nodes)
        rows = np.vstack([stream.emit() for _ in range(batch.shape[0])])
        # From the second tick on: bitwise identical.
        assert np.array_equal(rows[1:], batch[1:])
        # First tick: the batch converter back-fills counter rates
        # non-causally; the stream emits 0 there and matches elsewhere.
        differs = rows[0] != batch[0]
        assert np.all(rows[0][differs] == 0.0)

    def test_emit_past_recorded_history_raises(self, solr_sim):
        agent = TelemetryAgent(seed=5)
        container = _solr_container(solr_sim)
        stream = agent.open_stream(container, solr_sim.nodes)
        stream.advance_to(container.created_at + len(container.history))
        with pytest.raises(ValueError, match="no recorded tick"):
            stream.emit()

    def test_advance_to_and_clock(self, solr_sim):
        agent = TelemetryAgent(seed=5)
        container = _solr_container(solr_sim)
        stream = agent.open_stream(container, solr_sim.nodes)
        assert stream.clock == container.created_at
        last = stream.advance_to(container.created_at + 10)
        assert stream.clock == container.created_at + 10
        assert np.array_equal(last, stream.tail.last())
        # Already caught up: nothing to emit.
        assert stream.advance_to(container.created_at + 10) is None


# ----------------------------------------------------------------------
# Incremental pipeline vs batch transform
# ----------------------------------------------------------------------
def _toy_meta() -> list[FeatureMeta]:
    return [
        FeatureMeta(
            "H-CPU-U", domain=Domain.CPU, scope=Scope.HOST, utilization=True
        ),
        FeatureMeta(
            "H-MEM-U", domain=Domain.MEMORY, scope=Scope.HOST, utilization=True
        ),
        FeatureMeta(
            "C-CPU-U",
            domain=Domain.CPU,
            scope=Scope.CONTAINER,
            utilization=True,
        ),
        FeatureMeta("network.total.bytes", domain=Domain.NETWORK, bytes_like=True),
        FeatureMeta(
            "cgroup.blkio.bytes",
            domain=Domain.DISK,
            scope=Scope.CONTAINER,
            bytes_like=True,
        ),
        FeatureMeta("kernel.all.load", domain=Domain.KERNEL),
    ]


def _toy_matrix(rng: np.random.Generator, n_rows: int) -> np.ndarray:
    return np.column_stack(
        [
            rng.uniform(0.0, 100.0, n_rows),
            rng.uniform(0.0, 100.0, n_rows),
            rng.uniform(0.0, 100.0, n_rows),
            rng.gamma(2.0, 1e6, n_rows),
            rng.gamma(2.0, 1e5, n_rows),
            rng.uniform(0.0, 8.0, n_rows),
        ]
    )


TOY_CONFIGS = {
    "paper-default": PipelineConfig(temporal_windows=(1, 3)),
    "pca": PipelineConfig(
        reduction1="pca",
        interactions=False,
        reduction2=None,
        temporal_windows=(1, 3),
    ),
    "raw-filter-time": PipelineConfig(
        normalize=False,
        reduction1="filter",
        interactions=False,
        reduction2=None,
        temporal_windows=(1, 3),
    ),
}


@pytest.fixture(scope="module", params=sorted(TOY_CONFIGS))
def fitted_toy_pipeline(request):
    rng = np.random.default_rng(42)
    X = _toy_matrix(rng, 160)
    y = (X[:, 2] > 60.0).astype(np.int64)
    groups = np.repeat([0, 1, 2, 3], 40)
    pipeline = MonitorlessPipeline(TOY_CONFIGS[request.param], random_state=0)
    pipeline.fit_transform(X, _toy_meta(), y, groups)
    return request.param, pipeline


class TestPipelineStreaming:
    def test_feature_pipeline_is_the_same_class(self):
        assert FeaturePipeline is MonitorlessPipeline

    def test_stream_requires_fit(self):
        with pytest.raises(RuntimeError, match="fit"):
            MonitorlessPipeline().stream()

    def test_stream_matches_batch(self, fitted_toy_pipeline):
        name, pipeline = fitted_toy_pipeline
        X = _toy_matrix(np.random.default_rng(7), 50)
        batch, _ = pipeline.transform(X, _toy_meta())
        stream = pipeline.stream()
        streamed = np.vstack([stream.push(row) for row in X])
        assert stream.ticks == 50
        if name == "pca":  # single-row BLAS may differ in the last bits
            assert np.max(np.abs(streamed - batch)) <= TOLERANCE
        else:
            assert np.array_equal(streamed, batch)

    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n_rows=st.integers(min_value=1, max_value=24),
    )
    def test_stream_matches_batch_property(self, fitted_toy_pipeline, seed, n_rows):
        """Equivalence holds for any series, including ones shorter
        than the temporal windows (the AVG/LAG warm-up prefix)."""
        _, pipeline = fitted_toy_pipeline
        X = _toy_matrix(np.random.default_rng(seed), n_rows)
        batch, _ = pipeline.transform(X, _toy_meta())
        stream = pipeline.stream()
        streamed = np.vstack([stream.push(row) for row in X])
        assert np.max(np.abs(streamed - batch)) <= TOLERANCE

    def test_transform_tick_convenience_and_reset(self, fitted_toy_pipeline):
        _, pipeline = fitted_toy_pipeline
        X = _toy_matrix(np.random.default_rng(11), 8)
        batch, _ = pipeline.transform(X, _toy_meta())
        first = np.vstack([pipeline.transform_tick(row) for row in X])
        assert np.max(np.abs(first - batch)) <= TOLERANCE
        # Without a reset the internal series continues; with one, the
        # warm-up starts over and the same rows reproduce the same output.
        pipeline.reset_stream()
        again = np.vstack([pipeline.transform_tick(row) for row in X])
        assert np.array_equal(again, first)
        pipeline.reset_stream()


# ----------------------------------------------------------------------
# Model-level streaming on real telemetry
# ----------------------------------------------------------------------
class TestModelStream:
    def test_stream_requires_fit(self):
        with pytest.raises(RuntimeError, match="fitted"):
            MonitorlessModel().stream()

    def test_matches_batch_on_real_telemetry(self, tiny_model, solr_sim):
        agent = TelemetryAgent(seed=5)
        container = _solr_container(solr_sim)
        matrix = agent.instance_matrix(container, solr_sim.nodes)
        meta = agent.catalog.feature_meta()

        batch_features = tiny_model.transform(matrix, meta)
        batch_verdicts = tiny_model.predict(matrix, meta)
        batch_proba = tiny_model.predict_proba(matrix, meta)

        stream = tiny_model.stream()
        rows = [stream.transform_tick(row) for row in matrix]
        # tiny_model uses the filter-based paper config: bitwise equal.
        assert np.array_equal(np.vstack(rows), batch_features)
        assert stream.ticks == matrix.shape[0]

        verdict_stream = tiny_model.stream()
        verdicts = [verdict_stream.predict_tick(row) for row in matrix]
        assert np.array_equal(verdicts, batch_verdicts)

        proba_stream = tiny_model.stream()
        probas = [proba_stream.predict_proba_tick(row) for row in matrix]
        assert np.max(np.abs(np.asarray(probas) - batch_proba)) <= TOLERANCE


# ----------------------------------------------------------------------
# Orchestrator: run() vs the incremental start/tick/finish surface
# ----------------------------------------------------------------------
def _solr_orchestrator():
    sim = ClusterSimulation({"training": MACHINES["training"]}, seed=2)
    sim.deploy(
        solr_application(),
        {"solr": [Placement(node="training", cpu_limit=2.0)]},
    )
    return Orchestrator(sim, "solr", NoScalingPolicy(), rules=None)


class TestOrchestratorIncremental:
    def test_run_equals_start_tick_finish(self):
        workload = linear_ramp(60, 5, 90)
        batch_result = _solr_orchestrator().run({"solr": workload})

        orchestrator = _solr_orchestrator()
        orchestrator.start()
        for rate in workload:
            orchestrator.tick({"solr": rate})
        tick_result = orchestrator.finish()

        assert tick_result.duration == batch_result.duration == 60
        assert np.array_equal(
            tick_result.response_time, batch_result.response_time
        )
        assert np.array_equal(tick_result.throughput, batch_result.throughput)
        assert np.array_equal(tick_result.violations, batch_result.violations)
        assert np.array_equal(
            tick_result.extra_replicas, batch_result.extra_replicas
        )

    def test_tick_and_finish_require_start(self):
        orchestrator = _solr_orchestrator()
        with pytest.raises(RuntimeError, match="start"):
            orchestrator.tick({"solr": 1.0})
        with pytest.raises(RuntimeError, match="start"):
            orchestrator.finish()

    def test_finish_closes_the_run(self):
        orchestrator = _solr_orchestrator()
        orchestrator.start()
        orchestrator.tick({"solr": 1.0})
        orchestrator.finish()
        with pytest.raises(RuntimeError, match="start"):
            orchestrator.finish()


# ----------------------------------------------------------------------
# The streaming closed loop (policy level)
# ----------------------------------------------------------------------
def _teastore_sim(seed=0):
    from repro.datasets.experiments import evaluation_nodes, teastore_placements

    sim = ClusterSimulation(evaluation_nodes(), seed=seed)
    sim.deploy(teastore_application(), teastore_placements())
    return sim


class TestStreamingPolicy:
    def test_decisions_track_the_batch_path(self, tiny_model):
        """Without autoscaler feedback both data paths see the same
        cluster, so per-tick verdicts must mostly agree.  They are not
        expected to be identical: the batch path redraws synthetic
        telemetry noise for every sliding window (the RNG is keyed by
        the window start) while the stream measures each sample exactly
        once, so verdicts near the saturation boundary can flip."""
        sim = _teastore_sim()
        agent = TelemetryAgent(seed=0)
        batch_policy = MonitorlessPolicy(tiny_model, agent, window=16)
        stream_policy = MonitorlessPolicy(
            tiny_model, agent, window=16, streaming=True
        )
        workload = linear_ramp(70, 10, 220)
        agreements = 0
        for t, rate in enumerate(workload):
            sim.step({"teastore": float(rate)})
            batch_verdict = batch_policy.saturated_services(sim, "teastore", t)
            stream_verdict = stream_policy.saturated_services(
                sim, "teastore", t
            )
            agreements += batch_verdict == stream_verdict
        assert agreements >= 0.7 * len(workload)
        # One persistent stream pair per live container.
        live = {
            instance.container.name
            for replicas in sim.deployments["teastore"].instances.values()
            for instance in replicas
        }
        assert set(stream_policy._streams) == live

    def test_streaming_closed_loop_with_scaling(self, tiny_model):
        sim = _teastore_sim()
        agent = TelemetryAgent(seed=0)
        policy = MonitorlessPolicy(tiny_model, agent, window=16, streaming=True)
        rules = ScalingRules(
            placements={
                "auth": Placement(node="M2", cpu_limit=2.0),
                "recommender": Placement(node="M2", cpu_limit=1.0),
            },
            replica_lifespan=30,
            scale_groups=(("auth", "recommender"),),
        )
        orchestrator = Orchestrator(sim, "teastore", policy, rules)
        duration = 90
        result = orchestrator.run({"teastore": linear_ramp(duration, 10, 260)})
        assert result.duration == duration
        assert len(result.extra_replicas) == duration
        # Scale-out replicas appear and their streams are caught up and
        # pruned once their lifespan expires.
        live = {
            instance.container.name
            for replicas in sim.deployments["teastore"].instances.values()
            for instance in replicas
        }
        assert set(policy._streams) <= live
        for stream in policy._streams.values():
            container = stream.telemetry.container
            assert stream.telemetry.clock == container.created_at + len(
                container.history
            )

    def test_edge_deployment_streaming_kwarg(self, tiny_model):
        from repro.orchestrator.edge import EdgeDeployment

        agent = TelemetryAgent(seed=0)
        edge = EdgeDeployment(tiny_model, agent, streaming=True)
        assert edge.policy.streaming is True
        assert EdgeDeployment(tiny_model, agent).policy.streaming is False


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestStreamCli:
    def test_stream_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["stream", "--model", "m.pkl"])
        assert args.command == "stream"
        assert args.model == "m.pkl"
        assert args.duration == 600
        assert args.batch is False
        assert args.seed == 0

    def test_stream_requires_model(self, capsys):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["stream"])
        capsys.readouterr()


# ----------------------------------------------------------------------
# Regression: MinMaxScaler on subnormal feature spans
# ----------------------------------------------------------------------
class TestMinMaxSubnormalSpan:
    def test_subnormal_span_stays_finite_and_in_range(self):
        from repro.ml.preprocessing import MinMaxScaler

        X = np.array([[0.0, 1.0], [5e-324, 1.0 + 2**-40]])
        scaled = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(scaled))
        assert np.all(scaled >= 0.0) and np.all(scaled <= 1.0)

    def test_workload_pattern_smoke(self):
        # constant() is used by streaming examples in the docs.
        assert np.all(constant(5, 3.0) == 3.0)
