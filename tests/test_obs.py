"""Tests for the :mod:`repro.obs` observability layer.

Covers the registry contracts (bucket boundaries, snapshot/reset
isolation), span parentage, the disabled-switch no-op path, worker
isolation under :func:`repro.parallel.parallel_map` (no cross-worker
double counting), and the end-to-end instrumentation of the closed
loop, telemetry streams and fault injection.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import obs
from repro.obs.registry import Histogram, MetricsRegistry
from repro.obs.tracing import Tracer
from repro.parallel import parallel_map

JOBS = int(os.environ.get("REPRO_TEST_JOBS", "2"))


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends disabled with empty state."""
    obs.disable()
    obs.reset()
    yield
    obs.disable()
    obs.reset()


# ---------------------------------------------------------------------------
# Task functions must be module-level (they are pickled by name).
# ---------------------------------------------------------------------------
def _counting_task(item, arrays):
    obs.inc("worker.calls")
    obs.observe("worker.values", float(item))
    return item * 2


class TestRegistry:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.counter("a").inc(2.5)
        assert registry.snapshot()["counters"]["a"] == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            MetricsRegistry().counter("a").inc(-1.0)

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5)
        registry.gauge("g").set(2)
        registry.gauge("g").inc()
        assert registry.snapshot()["gauges"]["g"] == 3.0

    def test_name_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_histogram_bucket_boundaries(self):
        # le semantics: a value equal to a bound lands in that bucket.
        hist = Histogram("h", bounds=(1.0, 2.0, 5.0))
        for value in (0.5, 1.0, 1.5, 2.0, 5.0, 7.0):
            hist.observe(value)
        assert hist.bucket_counts == [2, 2, 1, 1]  # le1, le2, le5, +Inf
        assert hist.cumulative_counts() == [2, 4, 5, 6]
        assert hist.count == 6
        assert hist.total == pytest.approx(17.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram("h", bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("h", bounds=())

    def test_snapshot_is_detached(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.histogram("h", bounds=(1.0,)).observe(0.5)
        before = registry.snapshot()
        registry.counter("a").inc(10)
        registry.histogram("h").observe(0.5)
        assert before["counters"]["a"] == 1.0
        assert before["histograms"]["h"]["bucket_counts"] == [1, 0]

    def test_reset_clears_everything(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("g").set(1)
        registry.histogram("h").observe(0.5)
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }


class TestSwitch:
    def test_disabled_hooks_record_nothing(self):
        obs.inc("c")
        obs.set_gauge("g", 1.0)
        obs.observe("h", 0.5)
        with obs.trace("a"):
            with obs.trace("b"):
                pass
        assert obs.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert obs.span_roots() == []

    def test_disabled_trace_is_shared_noop(self):
        assert obs.trace("a") is obs.trace("b")

    def test_enable_disable_toggles_recording(self):
        obs.enable()
        obs.inc("c")
        obs.disable()
        obs.inc("c")
        assert obs.snapshot()["counters"]["c"] == 1.0

    def test_state_survives_disable_until_reset(self):
        obs.enable()
        obs.inc("c", 4)
        obs.disable()
        assert obs.snapshot()["counters"]["c"] == 4.0
        obs.reset()
        assert obs.snapshot()["counters"] == {}

    def test_traced_decorator_passthrough_when_disabled(self):
        @obs.traced("fn")
        def double(x):
            return 2 * x

        assert double(3) == 6
        assert obs.span_roots() == []


class TestTracing:
    def test_nested_span_parentage(self):
        obs.enable()
        with obs.trace("outer"):
            with obs.trace("inner"):
                pass
            with obs.trace("inner"):
                pass
        roots = obs.span_roots()
        assert [root.name for root in roots] == ["outer"]
        assert [child.name for child in roots[0].children] == [
            "inner",
            "inner",
        ]
        assert roots[0].duration_ns >= sum(
            child.duration_ns for child in roots[0].children
        )

    def test_traced_decorator_records_span(self):
        obs.enable()

        @obs.traced("fn.span")
        def double(x):
            return 2 * x

        assert double(5) == 10
        assert obs.span_roots()[0].name == "fn.span"

    def test_traced_decorator_closes_span_on_exception(self):
        obs.enable()

        @obs.traced("fn.boom")
        def boom():
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            boom()
        # The span was closed: a following span is a root, not a child.
        with obs.trace("after"):
            pass
        assert [s.name for s in obs.span_roots()] == ["fn.boom", "after"]

    def test_retention_cap_drops_new_leaves(self):
        tracer = Tracer(max_spans=3)
        for _ in range(5):
            tracer.start("leaf")
            tracer.end()
        assert tracer.retained == 3
        assert tracer.dropped == 2
        assert len(tracer.roots) == 3

    def test_retention_cap_keeps_parents_of_retained_children(self):
        tracer = Tracer(max_spans=2)
        tracer.start("parent")
        tracer.start("a")
        tracer.end()
        tracer.start("b")
        tracer.end()
        tracer.end()  # parent: over cap but holds retained children
        assert [root.name for root in tracer.roots] == ["parent"]
        assert len(tracer.roots[0].children) == 2

    def test_unbalanced_end_raises(self):
        with pytest.raises(RuntimeError, match="without a matching"):
            Tracer().end()


class TestExport:
    def test_prometheus_exposition(self):
        obs.enable()
        obs.inc("loop.ticks", 3)
        obs.set_gauge("pool.workers", 2)
        obs.observe("tick.seconds", 0.3, bounds=(0.1, 1.0))
        obs.observe("tick.seconds", 5.0)
        text = obs.metrics_to_prometheus(obs.snapshot())
        assert "# TYPE repro_loop_ticks counter\nrepro_loop_ticks 3" in text
        assert "# TYPE repro_pool_workers gauge\nrepro_pool_workers 2" in text
        assert 'repro_tick_seconds_bucket{le="0.1"} 0' in text
        assert 'repro_tick_seconds_bucket{le="1"} 1' in text
        assert 'repro_tick_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_tick_seconds_sum 5.3" in text
        assert "repro_tick_seconds_count 2" in text

    def test_json_round_trip(self):
        import json

        obs.enable()
        obs.inc("a.b", 2)
        obs.observe("h", 0.5, bounds=(1.0,))
        parsed = json.loads(obs.metrics_to_json(obs.snapshot()))
        assert parsed["counters"]["a.b"] == 2.0
        assert parsed["histograms"]["h"]["bucket_counts"] == [1, 0]

    def test_span_aggregation_merges_same_name_siblings(self):
        obs.enable()
        for _ in range(3):
            with obs.trace("tick"):
                with obs.trace("step"):
                    pass
        [node] = obs.aggregate_spans(obs.span_roots())
        assert node["name"] == "tick" and node["calls"] == 3
        assert node["children"][0]["name"] == "step"
        assert node["children"][0]["calls"] == 3
        assert node["total_seconds"] >= node["children"][0]["total_seconds"]

    def test_render_span_tree(self):
        obs.enable()
        with obs.trace("tick"):
            with obs.trace("step"):
                pass
        rendered = obs.render_span_tree(obs.span_roots(), dropped=7)
        assert "tick" in rendered and "  step" in rendered
        assert "calls=1" in rendered
        assert "7 spans beyond the retention cap" in rendered

    def test_render_empty(self):
        assert "no spans" in obs.render_span_tree([])


class TestParallelIsolation:
    def test_serial_records_in_process(self):
        obs.enable()
        results = parallel_map(_counting_task, [1, 2, 3], n_jobs=1)
        assert results == [2, 4, 6]
        snapshot = obs.snapshot()
        assert snapshot["counters"]["worker.calls"] == 3.0
        assert snapshot["histograms"]["worker.values"]["count"] == 3

    def test_workers_never_double_count_in_parent(self):
        obs.enable()
        results = parallel_map(_counting_task, list(range(8)), n_jobs=JOBS)
        assert results == [i * 2 for i in range(8)]
        snapshot = obs.snapshot()
        # The task ran only in workers; their fork-time registry copies
        # died with the pool, so the parent saw none of the increments.
        assert "worker.calls" not in snapshot["counters"]
        # ... but the parent recorded its own pool-side accounting.
        assert snapshot["counters"]["parallel.items"] == 8.0
        assert snapshot["counters"]["parallel.chunks"] >= 1.0
        assert snapshot["gauges"]["parallel.workers"] == float(JOBS)
        waits = snapshot["histograms"]["parallel.queue_wait_seconds"]
        execs = snapshot["histograms"]["parallel.execute_seconds"]
        assert waits["count"] == execs["count"] >= 1

    def test_parallel_results_identical_with_obs_enabled(self):
        baseline = parallel_map(_counting_task, list(range(6)), n_jobs=JOBS)
        obs.enable()
        instrumented = parallel_map(
            _counting_task, list(range(6)), n_jobs=JOBS
        )
        assert baseline == instrumented


class TestRuntimeInstrumentation:
    def _closed_loop(self, duration=8):
        from repro.apps.solr import solr_application
        from repro.cluster.node import MACHINES
        from repro.cluster.simulation import ClusterSimulation, Placement
        from repro.orchestrator.loop import Orchestrator
        from repro.orchestrator.policies import NoScalingPolicy
        from repro.workloads.patterns import constant

        simulation = ClusterSimulation(
            {"training": MACHINES["training"]}, seed=0
        )
        simulation.deploy(
            solr_application(), {"solr": [Placement(node="training")]}
        )
        orchestrator = Orchestrator(
            simulation, "solr", NoScalingPolicy(), rules=None
        )
        return orchestrator.run({"solr": constant(duration, 50.0)})

    def test_orchestrator_tick_metrics_and_spans(self):
        obs.enable()
        self._closed_loop(duration=8)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["orchestrator.ticks"] == 8.0
        assert snapshot["histograms"]["orchestrator.tick_seconds"]["count"] == 8
        ticks = [s for s in obs.span_roots() if s.name == "orchestrator.tick"]
        assert len(ticks) == 8
        assert ticks[0].children[0].name == "simulation.step"

    def test_orchestrator_results_identical_under_observability(self):
        clean = self._closed_loop(duration=6)
        obs.enable()
        instrumented = self._closed_loop(duration=6)
        assert np.array_equal(clean.response_time, instrumented.response_time)
        assert np.array_equal(clean.throughput, instrumented.throughput)

    def test_forest_fit_predict_counters(self, binary_data):
        from repro.ml.forest import RandomForestClassifier

        X_train, y_train, X_test, _ = binary_data
        obs.enable()
        forest = RandomForestClassifier(n_estimators=5, random_state=0)
        forest.fit(X_train[:200], y_train[:200])
        forest.predict_proba(X_test[:20])
        snapshot = obs.snapshot()
        assert snapshot["counters"]["forest.trees_fitted"] == 5.0
        assert snapshot["counters"]["forest.predict_chunks"] == 1.0
        assert snapshot["counters"]["forest.predict_chunk_trees"] == 5.0
        names = {root.name for root in obs.span_roots()}
        assert {"forest.fit", "forest.predict_proba"} <= names

    def test_telemetry_stream_emission_counters(self):
        from repro.apps.solr import solr_application
        from repro.cluster.node import MACHINES
        from repro.cluster.simulation import ClusterSimulation, Placement
        from repro.telemetry.agent import TelemetryAgent
        from repro.workloads.patterns import constant

        simulation = ClusterSimulation(
            {"training": MACHINES["training"]}, seed=0
        )
        simulation.deploy(
            solr_application(), {"solr": [Placement(node="training")]}
        )
        result = simulation.run({"solr": constant(10, 50.0)})
        agent = TelemetryAgent(seed=0)
        obs.enable()
        stream = agent.open_stream(result.containers[0], result.nodes)
        stream.advance_to(stream.start + 10)
        agent.instance_matrix(result.containers[0], result.nodes)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["telemetry.rows_emitted"] == 10.0
        assert snapshot["counters"]["telemetry.rows_synthesized"] == 10.0

    def test_fault_injection_counters(self):
        from repro.apps.solr import solr_application
        from repro.cluster.faults import (
            FaultSchedule,
            MetricDropout,
            NodeSlowdown,
        )
        from repro.cluster.node import MACHINES
        from repro.cluster.simulation import ClusterSimulation, Placement
        from repro.telemetry.agent import TelemetryAgent
        from repro.workloads.patterns import constant

        simulation = ClusterSimulation(
            {"training": MACHINES["training"]}, seed=0
        )
        simulation.deploy(
            solr_application(), {"solr": [Placement(node="training")]}
        )
        fault = NodeSlowdown(node="training", factor=0.5, start=2, end=6)
        obs.enable()
        result = FaultSchedule([fault]).run(
            simulation, {"solr": constant(10, 50.0)}
        )
        dropout = MetricDropout(TelemetryAgent(seed=0), probability=0.3, seed=1)
        matrix = dropout.instance_matrix(result.containers[0], result.nodes)
        snapshot = obs.snapshot()
        assert snapshot["counters"]["faults.runs"] == 1.0
        assert snapshot["counters"]["faults.active_fault_ticks"] == 4.0
        assert snapshot["counters"]["faults.dropout_matrices"] == 1.0
        dropped = snapshot["counters"]["faults.readings_dropped"]
        assert 0 < dropped < matrix.size
