"""Tests for the linear models and the MLP."""

import numpy as np
import pytest

from repro.ml.linear import LinearSVC, LogisticRegression
from repro.ml.metrics import accuracy_score
from repro.ml.neural import MLPClassifier


class TestLogisticRegression:
    def test_learns_linear_problem(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LogisticRegression(max_iter=30, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.9

    def test_probabilities_calibrated_direction(self, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LogisticRegression(max_iter=30, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)[:, 1]
        assert proba[y_test == 1].mean() > proba[y_test == 0].mean()

    def test_regularization_shrinks_weights(self, linear_data):
        X_train, y_train, _, _ = linear_data
        weak = LogisticRegression(C=100.0, max_iter=30, random_state=0)
        strong = LogisticRegression(C=0.001, max_iter=30, random_state=0)
        weak.fit(X_train, y_train)
        strong.fit(X_train, y_train)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_invalid_C(self):
        with pytest.raises(ValueError, match="C must"):
            LogisticRegression(C=-1.0).fit(np.zeros((4, 1)), [0, 1, 0, 1])

    def test_class_weight_balanced_biases_minority(self):
        generator = np.random.default_rng(5)
        X = generator.normal(size=(400, 3))
        y = (X[:, 0] > 1.2).astype(int)  # ~12% positives
        plain = LogisticRegression(max_iter=20, random_state=0).fit(X, y)
        balanced = LogisticRegression(
            max_iter=20, class_weight="balanced", random_state=0
        ).fit(X, y)
        assert balanced.predict(X).sum() >= plain.predict(X).sum()


class TestLinearSVC:
    @pytest.mark.parametrize("penalty", ["l1", "l2"])
    def test_learns_linear_problem(self, penalty, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        model = LinearSVC(penalty=penalty, max_iter=50, random_state=0)
        model.fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.85

    def test_invalid_penalty(self):
        with pytest.raises(ValueError, match="penalty"):
            LinearSVC(penalty="elasticnet").fit(np.zeros((4, 1)), [0, 1, 0, 1])

    def test_decision_function_sign_matches_predict(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        model = LinearSVC(max_iter=30, random_state=0).fit(X_train, y_train)
        scores = model.decision_function(X_test)
        assert np.array_equal(model.predict(X_test), (scores >= 0).astype(int))


class TestMLP:
    def test_learns_nonlinear_problem(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        model = MLPClassifier(epochs=30, random_state=0).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.8

    @pytest.mark.parametrize(
        "activations",
        [("relu", "relu", "relu"), ("sigmoid", "relu", "linear"),
         ("relu", "sigmoid", "relu")],
    )
    def test_activation_grid_from_paper(self, activations, linear_data):
        X_train, y_train, X_test, y_test = linear_data
        a1, a2, a3 = activations
        model = MLPClassifier(
            hidden_units=(16, 8, 4),
            activation_function1=a1,
            activation_function2=a2,
            activation_function3=a3,
            epochs=20,
            random_state=0,
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, model.predict(X_test)) > 0.7

    def test_softmax_hidden_layer_degenerates_to_majority(self, linear_data):
        """A softmax first hidden layer starves the gradient; the net
        collapses to (near-)constant output -- consistent with the
        paper's observation that its NN "only predicts the majority
        label" (section 3.4)."""
        X_train, y_train, X_test, y_test = linear_data
        degenerate = MLPClassifier(
            hidden_units=(16, 8, 4),
            activation_function1="softmax",
            activation_function3="sigmoid",
            epochs=20,
            random_state=0,
        ).fit(X_train, y_train)
        healthy = MLPClassifier(
            hidden_units=(16, 8, 4), epochs=20, random_state=0
        ).fit(X_train, y_train)
        degenerate_accuracy = accuracy_score(y_test, degenerate.predict(X_test))
        healthy_accuracy = accuracy_score(y_test, healthy.predict(X_test))
        assert degenerate_accuracy < healthy_accuracy - 0.15

    def test_unknown_activation_raises(self, linear_data):
        X_train, y_train, _, _ = linear_data
        with pytest.raises(ValueError, match="activation"):
            MLPClassifier(activation_function1="tanhh", epochs=1).fit(
                X_train, y_train
            )

    def test_proba_shape_and_range(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        model = MLPClassifier(epochs=5, random_state=0).fit(X_train, y_train)
        proba = model.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_deterministic_given_seed(self, linear_data):
        X_train, y_train, X_test, _ = linear_data
        a = MLPClassifier(epochs=3, random_state=9).fit(X_train, y_train)
        b = MLPClassifier(epochs=3, random_state=9).fit(X_train, y_train)
        assert np.array_equal(a.predict(X_test), b.predict(X_test))
