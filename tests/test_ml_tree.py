"""Tests for the CART decision tree."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy_score
from repro.ml.tree import DecisionTreeClassifier


class TestFitting:
    def test_memorizes_clean_data(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(random_state=0)
        tree.fit(X_train, y_train)
        assert tree.score(X_train, y_train) > 0.99

    def test_generalizes(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        tree = DecisionTreeClassifier(max_depth=8, random_state=0)
        tree.fit(X_train, y_train)
        assert accuracy_score(y_test, tree.predict(X_test)) > 0.8

    def test_entropy_criterion_works(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        tree = DecisionTreeClassifier(criterion="entropy", max_depth=8, random_state=0)
        tree.fit(X_train, y_train)
        assert accuracy_score(y_test, tree.predict(X_test)) > 0.8

    def test_invalid_criterion(self):
        with pytest.raises(ValueError, match="criterion"):
            DecisionTreeClassifier(criterion="mse").fit(np.zeros((4, 1)), [0, 1, 0, 1])

    def test_single_class_becomes_leaf(self):
        tree = DecisionTreeClassifier()
        tree.fit(np.arange(6).reshape(-1, 1), np.zeros(6))
        assert tree.n_nodes_ == 1
        assert np.all(tree.predict(np.array([[0.0], [99.0]])) == 0)

    def test_string_labels_roundtrip(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array(["ok", "ok", "sat", "sat"])
        tree = DecisionTreeClassifier().fit(X, y)
        assert list(tree.predict(X)) == ["ok", "ok", "sat", "sat"]


class TestStructureConstraints:
    def test_max_depth_respected(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=3, random_state=0).fit(X_train, y_train)
        assert tree.depth_ <= 3

    def test_min_samples_leaf(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(min_samples_leaf=50, random_state=0)
        tree.fit(X_train, y_train)
        # Every leaf's training share must be at least min_samples_leaf,
        # so the tree cannot have more than n/50 leaves.
        n_leaves = int(np.sum(tree.tree_feature_ == -1))
        assert n_leaves <= len(y_train) // 50

    def test_min_samples_split_blocks_small_nodes(self):
        X = np.arange(10, dtype=float).reshape(-1, 1)
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier(min_samples_split=100).fit(X, y)
        assert tree.n_nodes_ == 1  # root cannot split

    def test_stump_prediction_shape(self, binary_data):
        X_train, y_train, X_test, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=1, random_state=0).fit(X_train, y_train)
        proba = tree.predict_proba(X_test)
        assert proba.shape == (len(X_test), 2)
        assert np.allclose(proba.sum(axis=1), 1.0)


class TestImportances:
    def test_importances_sum_to_one(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=6, random_state=0).fit(X_train, y_train)
        assert np.isclose(tree.feature_importances_.sum(), 1.0)

    def test_informative_feature_ranks_first(self):
        generator = np.random.default_rng(0)
        X = generator.normal(size=(500, 5))
        y = (X[:, 2] > 0).astype(int)
        tree = DecisionTreeClassifier(max_depth=4, random_state=0).fit(X, y)
        assert np.argmax(tree.feature_importances_) == 2


class TestSampleWeights:
    def test_weights_shift_decision(self):
        # Two overlapping points; weighting one class heavily must win.
        X = np.array([[0.0], [0.0], [1.0], [1.0]])
        y = np.array([0, 1, 0, 1])
        weights = np.array([10.0, 0.1, 10.0, 0.1])
        tree = DecisionTreeClassifier().fit(X, y, sample_weight=weights)
        assert np.all(tree.predict(X) == 0)

    def test_class_weight_balanced_accepted(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(class_weight="balanced", max_depth=4,
                                      random_state=0)
        tree.fit(X_train, y_train)
        assert tree.score(X_train, y_train) > 0.7


class TestErrors:
    def test_predict_before_fit(self):
        with pytest.raises(Exception, match="not fitted"):
            DecisionTreeClassifier().predict(np.zeros((2, 2)))

    def test_feature_count_mismatch(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=2, random_state=0).fit(X_train, y_train)
        with pytest.raises(ValueError, match="features"):
            tree.predict(np.zeros((2, 3)))

    def test_max_features_sqrt(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_features="sqrt", random_state=0)
        tree.fit(X_train, y_train)
        assert tree.score(X_train, y_train) > 0.9

    def test_bad_max_features(self, binary_data):
        X_train, y_train, _, _ = binary_data
        with pytest.raises(ValueError, match="max_features"):
            DecisionTreeClassifier(max_features="bogus").fit(X_train, y_train)


class TestRandomSplitter:
    """splitter='random' draws one uniform threshold per examined
    candidate feature (extra-trees semantics)."""

    def test_fits_and_generalizes(self, binary_data):
        X_train, y_train, X_test, y_test = binary_data
        tree = DecisionTreeClassifier(
            splitter="random", max_depth=10, random_state=0
        ).fit(X_train, y_train)
        assert accuracy_score(y_test, tree.predict(X_test)) > 0.7

    def test_examines_multiple_features(self, binary_data):
        """The old implementation collapsed to a single candidate per
        node; across a whole tree the split features covered only a
        sliver of the informative columns."""
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(
            splitter="random", max_depth=12, random_state=0
        ).fit(X_train, y_train)
        used = np.unique(tree.tree_feature_[tree.tree_feature_ >= 0])
        assert used.size >= 3

    def test_thresholds_are_not_midpoints(self):
        """Random thresholds fall anywhere in the node range; a best
        split on this data would always pick the single midpoint 0.5."""
        X = np.repeat([0.0, 1.0], 50)[:, None]
        y = np.repeat([0, 1], 50)
        thresholds = [
            DecisionTreeClassifier(splitter="random", random_state=seed)
            .fit(X, y)
            .tree_threshold_[0]
            for seed in range(10)
        ]
        assert len({round(t, 12) for t in thresholds}) > 1
        assert all(0.0 <= t < 1.0 for t in thresholds)

    def test_respects_min_samples_leaf(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(
            splitter="random", min_samples_leaf=30, random_state=1
        ).fit(X_train, y_train)
        leaf_sizes = np.bincount(
            tree._apply(X_train), minlength=tree.n_nodes_
        )[tree.tree_feature_ == -1]
        assert leaf_sizes.min() >= 30

    def test_max_features_limits_candidates(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(
            splitter="random", max_features=2, max_depth=6, random_state=2
        ).fit(X_train, y_train)
        assert tree.n_nodes_ > 1

    def test_invalid_splitter(self, binary_data):
        X_train, y_train, _, _ = binary_data
        with pytest.raises(ValueError, match="splitter"):
            DecisionTreeClassifier(splitter="fancy").fit(X_train, y_train)


class TestTreeShapeProperties:
    def test_n_leaves_matches_structure(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=5, random_state=0).fit(
            X_train, y_train
        )
        assert tree.n_leaves_ == int(np.sum(tree.tree_feature_ == -1))
        # A binary tree with L leaves has 2L - 1 nodes.
        assert tree.n_nodes_ == 2 * tree.n_leaves_ - 1

    def test_single_leaf_tree(self):
        tree = DecisionTreeClassifier().fit(np.zeros((5, 2)), np.zeros(5))
        assert tree.n_leaves_ == 1
        assert tree.depth_ == 0

    def test_depth_matches_manual_walk(self, binary_data):
        X_train, y_train, _, _ = binary_data
        tree = DecisionTreeClassifier(max_depth=7, random_state=0).fit(
            X_train, y_train
        )

        def walk(node):
            if tree.tree_feature_[node] == -1:
                return 0
            return 1 + max(
                walk(tree.tree_left_[node]), walk(tree.tree_right_[node])
            )

        assert tree.depth_ == walk(0)

    def test_properties_require_fit(self):
        with pytest.raises(Exception, match="not fitted"):
            DecisionTreeClassifier().n_leaves_
        with pytest.raises(Exception, match="not fitted"):
            DecisionTreeClassifier().depth_
