"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.cluster.node import fair_share
from repro.cluster.queueing import BacklogQueue, erlang_c, mm1_response_time
from repro.core.evaluation import lagged_confusion
from repro.core.features.temporal import lagged, rolling_average
from repro.ml.preprocessing import MinMaxScaler, StandardScaler
from repro.telemetry.rates import counters_to_rates

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def binary_series(max_length=60):
    return st.lists(st.integers(0, 1), min_size=1, max_size=max_length)


class TestLaggedConfusionProperties:
    @given(binary_series(), st.integers(0, 5))
    def test_counts_partition_samples(self, y, k):
        y_true = np.array(y)
        y_pred = np.roll(y_true, 1) if len(y) > 1 else y_true
        confusion = lagged_confusion(y_true, y_pred, k)
        total = confusion.tp + confusion.tn + confusion.fp + confusion.fn
        assert total == len(y)

    @given(binary_series())
    def test_perfect_prediction_is_perfect(self, y):
        confusion = lagged_confusion(y, y, k=2)
        assert confusion.fp == 0 and confusion.fn == 0

    @given(binary_series(), st.integers(0, 4))
    def test_f1_monotone_in_k(self, y, k):
        y_true = np.array(y)
        y_pred = 1 - y_true  # adversarial prediction
        low = lagged_confusion(y_true, y_pred, k).f1
        high = lagged_confusion(y_true, y_pred, k + 1).f1
        assert high >= low - 1e-12

    @given(binary_series())
    def test_scores_bounded(self, y):
        rng = np.random.default_rng(0)
        y_pred = rng.integers(0, 2, size=len(y))
        confusion = lagged_confusion(y, y_pred, k=2)
        assert 0.0 <= confusion.f1 <= 1.0
        assert 0.0 <= confusion.accuracy <= 1.0


class TestScalerProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=finite_floats,
        )
    )
    def test_minmax_output_in_unit_box(self, X):
        scaled = MinMaxScaler().fit_transform(X)
        assert np.all(scaled >= -1e-9) and np.all(scaled <= 1.0 + 1e-9)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(3, 30), st.integers(1, 4)),
            elements=st.floats(-1e4, 1e4, allow_nan=False),
        )
    )
    def test_standard_scaler_roundtrip(self, X):
        scaler = StandardScaler().fit(X)
        reconstructed = scaler.inverse_transform(scaler.transform(X))
        assert np.allclose(reconstructed, X, atol=1e-6)


class TestTemporalProperties:
    @given(
        arrays(np.float64, st.integers(1, 50), elements=st.floats(0, 1e6,
               allow_nan=False)),
        st.integers(1, 10),
    )
    def test_rolling_average_bounded_by_extremes(self, values, window):
        averaged = rolling_average(values, window)
        assert np.all(averaged >= values.min() - 1e-9)
        assert np.all(averaged <= values.max() + 1e-9)

    @given(
        arrays(np.float64, st.integers(1, 50), elements=finite_floats),
        st.integers(0, 10),
    )
    def test_lagged_preserves_value_set(self, values, lag):
        shifted = lagged(values, lag)
        assert set(np.unique(shifted)) <= set(np.unique(values))

    @given(arrays(np.float64, st.integers(1, 50), elements=finite_floats))
    def test_window_one_is_identity(self, values):
        assert np.allclose(rolling_average(values, 1), values)


class TestFairShareProperties:
    @given(
        st.lists(st.floats(0, 1e6, allow_nan=False), min_size=1, max_size=10),
        st.floats(0.1, 1e6, allow_nan=False),
    )
    def test_shares_never_exceed_capacity_when_contended(self, demands, capacity):
        demands = np.array(demands)
        shares = fair_share(demands, capacity)
        if demands.sum() > capacity:
            assert shares.sum() <= capacity * (1 + 1e-9)
        assert np.all(shares <= demands + 1e-9)

    @given(
        st.lists(st.floats(0, 100, allow_nan=False), min_size=2, max_size=8),
        st.floats(1.0, 50.0),
    )
    def test_shares_preserve_demand_order(self, demands, capacity):
        demands = np.array(demands)
        shares = fair_share(demands, capacity)
        order = np.argsort(demands)
        assert np.all(np.diff(shares[order]) >= -1e-9)


class TestQueueProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 1e4, allow_nan=False),
                      st.floats(0, 1e4, allow_nan=False)),
            min_size=1,
            max_size=30,
        )
    )
    def test_conservation(self, steps):
        """Arrivals = completions + drops + backlog, at every point."""
        queue = BacklogQueue(timeout=3.0)
        arrived = completed = dropped = 0.0
        for arrivals, capacity in steps:
            done, lost = queue.offer(arrivals, capacity)
            arrived += arrivals
            completed += done
            dropped += lost
            assert abs(arrived - completed - dropped - queue.backlog) < 1e-6 * (
                1 + arrived
            )

    @given(st.floats(0, 0.99), st.floats(1e-6, 10.0))
    def test_mm1_at_least_service_time(self, rho, service_time):
        assert mm1_response_time(service_time, rho) >= service_time - 1e-12

    @given(st.integers(1, 20), st.floats(0, 100.0))
    @settings(max_examples=50)
    def test_erlang_c_is_probability(self, servers, offered):
        assert 0.0 <= erlang_c(servers, offered) <= 1.0


class TestRateProperties:
    @given(
        arrays(np.float64, st.tuples(st.integers(2, 40), st.integers(1, 4)),
               elements=st.floats(0, 1e6, allow_nan=False))
    )
    def test_rates_of_cumsum_recover_increments(self, increments):
        counters = np.cumsum(increments, axis=0)
        mask = np.ones(increments.shape[1], dtype=bool)
        rates = counters_to_rates(counters, mask)
        # Differencing a cumsum loses ~eps * max(|counter|) to rounding
        # (mixing 1e-4 and 1e6 increments makes this exceed a bare
        # 1e-9), so the absolute tolerance must scale with the counter
        # magnitude the subtraction actually operated on.
        atol = 1e-9 + 100 * np.finfo(np.float64).eps * float(
            np.max(np.abs(counters), initial=0.0)
        )
        assert np.allclose(rates[1:], increments[1:], rtol=1e-9, atol=atol)

    @given(
        arrays(np.float64, st.tuples(st.integers(1, 20), st.integers(1, 3)),
               elements=finite_floats)
    )
    def test_rates_never_negative_for_counters(self, values):
        mask = np.ones(values.shape[1], dtype=bool)
        rates = counters_to_rates(values, mask)
        assert np.all(rates >= 0.0)
